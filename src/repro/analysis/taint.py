"""Interprocedural nondeterminism taint analysis (REP101–REP103).

Sources
-------
* **wall-clock** — ``time.time``/``monotonic``/``perf_counter`` (and the
  ``_ns`` variants), ``datetime.now``/``utcnow``/``today``.  Not a
  source inside ``repro.live`` modules, mirroring the REP003 exemption:
  there, wall seconds *are* the injected Clock.
* **rng** — draws from the module-level ``random``/``numpy.random`` API,
  and zero-argument instance constructors (``random.Random()``,
  ``numpy.random.default_rng()``).  Seeded constructors and draws from
  locally constructed seeded generators are clean.
* **entropy** — ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``.
* **set-order** — the loop variable of iteration over a value the
  analysis knows is a set (literal, ``set()`` call, set-op method), and
  ``.pop()`` on such a value.  ``sorted()`` (and ``len``/``min``/``max``/
  ``sum``) launder this kind: order no longer matters after them.

Propagation is summary-based: each function gets a summary (taints
reaching its return value, parameter→return flows, taints observed
flowing into each parameter from call sites) and the engine iterates the
intraprocedural transfer over all project functions until the summaries
stop changing (depth-capped).  Every taint carries its provenance chain;
crossing a call appends a step, so a finding renders the full
source → sink path.

Sinks
-----
* REP101 — kernel scheduling calls: ``timeout``, ``call_later``,
  ``schedule_callback``, ``succeed_at``, ``_schedule``, ``schedule``,
  and ``Timeout(...)`` construction.
* REP102 — ``SimResult(...)`` construction (any argument).
* REP103 — ``Scenario(...)`` / ``PlanItem(...)`` construction and
  methods of ``ScenarioGenerator`` subclasses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, ResolvedCall
from .modules import FunctionInfo, ProjectModel, dotted_name
from .simlint import Finding

__all__ = ["TaintPass", "run"]

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "datetime.now",
    "datetime.utcnow", "datetime.date.today",
}
_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
#: Attributes on the random module that are *not* draws.
_SAFE_RANDOM = {"Random", "SystemRandom", "getstate", "setstate", "seed"}
_SAFE_NP_RANDOM = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "Philox", "MT19937", "SFC64",
}
#: Builtins whose result no longer depends on the input's *order*.
_ORDER_LAUNDER = {"sorted", "len", "min", "max", "sum", "frozenset", "set"}

_SCHEDULING_SINKS = {
    "timeout", "call_later", "schedule_callback", "succeed_at",
    "_schedule", "schedule",
}

#: Max provenance steps kept per taint (also bounds fixpoint growth).
_MAX_STEPS = 10
#: Max global fixpoint rounds (bounds call-chain depth the analysis sees).
_MAX_ROUNDS = 12


@dataclass(frozen=True, order=True)
class Taint:
    """One nondeterminism source, plus the path it took to get here."""

    kind: str  # wall-clock | rng | entropy | set-order | param
    desc: str
    path: str
    line: int
    steps: Tuple[str, ...] = ()
    #: For kind == "param": which parameter of the summarized function.
    param: int = -1

    def step(self, note: str) -> Optional["Taint"]:
        if len(self.steps) >= _MAX_STEPS:
            return None
        return replace(self, steps=self.steps + (note,))

    def trace(self, sink_note: str) -> Tuple[str, ...]:
        head = f"{self.path}:{self.line}: source ({self.kind}): {self.desc}"
        return (head, *self.steps, sink_note)


TaintSet = FrozenSet[Taint]
_EMPTY: TaintSet = frozenset()


@dataclass
class Summary:
    """What a function does with taint, as seen so far."""

    returns: TaintSet = _EMPTY
    param_to_return: FrozenSet[int] = frozenset()
    #: Taints call sites have injected into each parameter index.
    param_taints: Dict[int, TaintSet] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.param_taints is None:
            self.param_taints = {}


def _param_names(fn: FunctionInfo) -> List[str]:
    args = fn.node.args  # type: ignore[attr-defined]
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


class _FunctionAnalysis:
    """One intraprocedural transfer of taint through a function body."""

    def __init__(
        self,
        owner: "TaintPass",
        fn: FunctionInfo,
        collect_sinks: bool = False,
    ) -> None:
        self.owner = owner
        self.fn = fn
        self.mod = fn.module
        self.collect = collect_sinks
        self.env: Dict[str, Set[Taint]] = {}
        self.returns: Set[Taint] = set()
        self.param_to_return: Set[int] = set()
        #: name -> True when the analysis knows the value is a set.
        self.set_vars: Set[str] = set()
        #: names bound to *seeded* RNG instances — their draws are clean.
        self.seeded_rngs: Set[str] = set()
        self.calls_by_pos: Dict[Tuple[int, int], ResolvedCall] = {
            (c.node.lineno, c.node.col_offset): c
            for c in owner.graph.callees(fn.qualname)
        }
        params = _param_names(fn)
        summary = owner.summaries[fn.qualname]
        for i, name in enumerate(params):
            taints: Set[Taint] = {
                Taint(kind="param", desc=name, path=self.mod.path,
                      line=fn.lineno, param=i)
            }
            taints |= set(summary.param_taints.get(i, _EMPTY))
            self.env[name] = taints

    # -- driving -----------------------------------------------------------

    def run(self) -> None:
        body = self.fn.node.body  # type: ignore[attr-defined]
        # Two passes pick up loop-carried taint (x tainted late in the
        # loop body, read early on the next iteration).
        for _ in range(2):
            for stmt in body:
                self.visit_stmt(stmt)

    # -- statements --------------------------------------------------------

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own functions
        if isinstance(node, ast.Return):
            if node.value is not None:
                for t in self.eval(node.value):
                    if t.kind == "param":
                        self.param_to_return.add(t.param)
                    else:
                        self.returns.add(t)
            return
        if isinstance(node, ast.Assign):
            taints = self.eval(node.value)
            self._note_set_binding(node.targets, node.value)
            self._note_rng_binding(node.targets, node.value)
            for tgt in node.targets:
                self.assign(tgt, taints)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                taints = self.eval(node.value)
                self._note_set_binding([node.target], node.value)
                self._note_rng_binding([node.target], node.value)
                self.assign(node.target, taints)
            return
        if isinstance(node, ast.AugAssign):
            taints = self.eval(node.value) | self.read(node.target)
            self.assign(node.target, taints)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_taints = set(self.eval(node.iter))
            if self._is_set_expr(node.iter):
                iter_taints.add(
                    Taint(
                        kind="set-order",
                        desc=f"iteration over a set "
                        f"({ast.unparse(node.iter)})",
                        path=self.mod.path,
                        line=node.iter.lineno,
                    )
                )
            self.assign(node.target, iter_taints)
            for stmt in node.body:
                self.visit_stmt(stmt)
            for stmt in node.orelse:
                self.visit_stmt(stmt)
            return
        if isinstance(node, (ast.If, ast.While)):
            self.eval(node.test)
            for stmt in node.body:
                self.visit_stmt(stmt)
            for stmt in node.orelse:
                self.visit_stmt(stmt)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taints)
            for stmt in node.body:
                self.visit_stmt(stmt)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:
                self.visit_stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self.visit_stmt(stmt)
            for stmt in node.orelse:
                self.visit_stmt(stmt)
            for stmt in node.finalbody:
                self.visit_stmt(stmt)
            return
        if isinstance(node, ast.Expr):
            self.eval(node.value)
            return
        # Everything else (pass, raise, import, global, ...): evaluate
        # any embedded expressions for their call effects.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)

    def assign(self, target: ast.expr, taints: Set[Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taints)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self.env[f"self.{target.attr}"] = set(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, taints)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taints)
        # Subscript stores: fold into the container's taint.
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            self.env.setdefault(target.value.id, set()).update(taints)

    def read(self, node: ast.expr) -> Set[Taint]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self":
            return set(self.env.get(f"self.{node.attr}", ()))
        return set()

    # -- set / rng inference ----------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id == "set":
                return True
            if isinstance(f, ast.Attribute) and f.attr in (
                "intersection", "union", "difference", "symmetric_difference",
            ):
                return self._is_set_expr(f.value)
        return False

    def _note_set_binding(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        is_set = self._is_set_expr(value)
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                if is_set:
                    self.set_vars.add(tgt.id)
                else:
                    self.set_vars.discard(tgt.id)

    def _note_rng_binding(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        """Track ``rng = random.Random(seed)`` so ``rng.random()`` is clean."""
        if not (isinstance(value, ast.Call) and (value.args or value.keywords)):
            return
        ext = self.mod.ext.call_target(value.func)
        name = dotted_name(value.func) or ""
        seeded = (
            ext in ("random.Random", "numpy.random.default_rng",
                    "numpy.random.RandomState")
            or name.endswith((".Random", ".default_rng", ".RandomState"))
            or name in ("Random", "default_rng", "RandomState")
        )
        if not seeded:
            return
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                self.seeded_rngs.add(tgt.id)
            elif isinstance(tgt, ast.Attribute) and isinstance(
                tgt.value, ast.Name
            ) and tgt.value.id == "self":
                self.seeded_rngs.add(f"self.{tgt.attr}")

    def _receiver_name(self, func: ast.expr) -> Optional[str]:
        if not isinstance(func, ast.Attribute):
            return None
        v = func.value
        if isinstance(v, ast.Name):
            return v.id
        if isinstance(v, ast.Attribute) and isinstance(v.value, ast.Name) \
                and v.value.id == "self":
            return f"self.{v.attr}"
        return None

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr) -> Set[Taint]:
        if isinstance(node, (ast.Name, ast.Attribute)):
            direct = self.read(node)
            if direct or isinstance(node, ast.Name):
                return direct
            return self.eval(node.value)  # obj.attr: taint of obj
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            out: Set[Taint] = set()
            for gen in node.generators:
                out |= self.eval(gen.iter)
                if self._is_set_expr(gen.iter):
                    out.add(
                        Taint(
                            kind="set-order",
                            desc=f"comprehension over a set "
                            f"({ast.unparse(gen.iter)})",
                            path=self.mod.path,
                            line=gen.iter.lineno,
                        )
                    )
            return out
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                out |= self.eval(child.value)
        return out

    def eval_call(self, node: ast.Call) -> Set[Taint]:
        arg_taints: List[Set[Taint]] = [self.eval(a) for a in node.args]
        kw_taints: Dict[str, Set[Taint]] = {
            kw.arg or "**": self.eval(kw.value) for kw in node.keywords
        }
        all_args: Set[Taint] = set().union(*arg_taints, *kw_taints.values()) \
            if (arg_taints or kw_taints) else set()

        source = self._source_taint(node)
        if source is not None:
            return all_args | {source}

        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )

        # Order-laundering builtins: drop set-order taint, keep the rest.
        if isinstance(func, ast.Name) and fname in _ORDER_LAUNDER:
            result = {t for t in sorted(all_args) if t.kind != "set-order"}
            return result

        site = self.calls_by_pos.get((node.lineno, node.col_offset))
        result = set()
        if site is not None and site.target in self.owner.summaries:
            callee = self.owner.model.functions[site.target]
            callee_summary = self.owner.summaries[site.target]
            # Push argument taints into the callee's parameters.
            self._push_args(site, callee, node, arg_taints, kw_taints)
            # Pull the callee's return taint back to this call site.
            short = _short(self.fn.qualname)
            for t in sorted(callee_summary.returns):
                stepped = t.step(
                    f"{self.mod.path}:{node.lineno}: returned by "
                    f"{_short(site.target)} into {short}"
                )
                if stepped is not None:
                    result.add(stepped)
            # Parameter->return flows: tainted arg i -> tainted result.
            for i in sorted(callee_summary.param_to_return):
                for t in self._arg_taint_at(
                    callee, node, arg_taints, kw_taints, i
                ):
                    stepped = t.step(
                        f"{self.mod.path}:{node.lineno}: flows through "
                        f"{_short(site.target)} back into {short}"
                    )
                    if stepped is not None:
                        result.add(stepped)
            if self.collect:
                self.owner.check_sink(self, site, node, arg_taints, kw_taints)
            # A resolved project call's result carries only what the
            # summary says — taints in args were pushed into the callee,
            # not implicitly returned.
            return result
        # Unknown callee (builtin/external/unresolved method): assume the
        # result is tainted if any argument or the receiver is.
        recv = self._receiver_name(func)
        if recv is not None:
            all_args |= set(self.env.get(recv, ()))
        if self.collect and site is not None:
            self.owner.check_sink(self, site, node, arg_taints, kw_taints)
        return all_args

    def _push_args(
        self,
        site: ResolvedCall,
        callee: FunctionInfo,
        node: ast.Call,
        arg_taints: List[Set[Taint]],
        kw_taints: Dict[str, Set[Taint]],
    ) -> None:
        params = _param_names(callee)
        is_method = callee.cls is not None and params[:1] == ["self"]
        offset = 1 if is_method else 0
        summary = self.owner.summaries[callee.qualname]
        short_callee = _short(callee.qualname)
        changed = False

        def push(index: int, taints: Set[Taint]) -> None:
            nonlocal changed
            real = set()
            for t in sorted(taints):
                if t.kind == "param":
                    continue
                stepped = t.step(
                    f"{self.mod.path}:{node.lineno}: passed to "
                    f"{short_callee} by {_short(self.fn.qualname)}"
                )
                if stepped is not None:
                    real.add(stepped)
            if not real:
                return
            cur = summary.param_taints.get(index, _EMPTY)
            new = cur | frozenset(real)
            if new != cur:
                summary.param_taints[index] = new
                changed = True

        for pos, taints in enumerate(arg_taints):
            push(pos + offset, taints)
        for kwname, taints in kw_taints.items():
            if kwname in params:
                push(params.index(kwname), taints)
        if changed:
            self.owner.dirty.add(callee.qualname)

    def _arg_taint_at(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        arg_taints: List[Set[Taint]],
        kw_taints: Dict[str, Set[Taint]],
        index: int,
    ) -> Set[Taint]:
        params = _param_names(callee)
        is_method = callee.cls is not None and params[:1] == ["self"]
        offset = 1 if is_method else 0
        pos = index - offset
        out: Set[Taint] = set()
        if 0 <= pos < len(arg_taints):
            out |= arg_taints[pos]
        if 0 <= index < len(params) and params[index] in kw_taints:
            out |= kw_taints[params[index]]
        return {t for t in sorted(out) if t.kind != "param"}

    def _source_taint(self, node: ast.Call) -> Optional[Taint]:
        """Taint introduced by this very call, if it is a source."""
        mod = self.mod
        ext = mod.ext.call_target(node.func)
        live = "live" in mod.scope_dirs

        def mk(kind: str, desc: str) -> Taint:
            return Taint(kind=kind, desc=desc, path=mod.path,
                         line=node.lineno)

        if ext is not None:
            if ext in _WALL_CLOCK:
                return None if live else mk("wall-clock", f"{ext}()")
            if ext in _ENTROPY:
                return mk("entropy", f"{ext}()")
            if ext.startswith("random."):
                attr = ext[len("random."):]
                if attr in _SAFE_RANDOM:
                    # Zero-arg Random() seeds from OS entropy.
                    if attr == "Random" and not (node.args or node.keywords):
                        return mk("rng", "random.Random() with no seed")
                    return None
                return mk("rng", f"global RNG draw {ext}()")
            if ext.startswith("numpy.random."):
                attr = ext[len("numpy.random."):]
                if attr in _SAFE_NP_RANDOM:
                    if attr in ("default_rng", "RandomState") and not (
                        node.args or node.keywords
                    ):
                        return mk("rng", f"{ext}() with no seed")
                    return None
                return mk("rng", f"global RNG draw {ext}()")
            if ext.startswith("secrets."):
                return mk("entropy", f"{ext}()")
            if ext.startswith("datetime.") and ext in _WALL_CLOCK:
                return None if live else mk("wall-clock", f"{ext}()")
            return None

        # Draws on a *known seeded* instance are clean; ``.pop()`` on a
        # known set is order-tainted.
        recv = self._receiver_name(node.func)
        if recv is not None and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if recv in self.seeded_rngs:
                return None
            if attr == "pop" and (
                recv in self.set_vars
            ) and not node.args:
                return mk("set-order", f"{recv}.pop() on a set")
        return None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


class TaintPass:
    """Drives the summary fixpoint and collects sink findings."""

    def __init__(self, model: ProjectModel, graph: CallGraph) -> None:
        self.model = model
        self.graph = graph
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in model.functions
        }
        self.dirty: Set[str] = set()
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, str, int, str, int]] = set()

    def run(self) -> List[Finding]:
        order = list(self.model.functions)
        for round_no in range(_MAX_ROUNDS):
            changed = False
            for qual in order:
                fn = self.model.functions[qual]
                fa = _FunctionAnalysis(self, fn)
                fa.run()
                summary = self.summaries[qual]
                new_returns = frozenset(fa.returns)
                new_p2r = frozenset(fa.param_to_return)
                if (new_returns != summary.returns
                        or new_p2r != summary.param_to_return):
                    summary.returns = new_returns
                    summary.param_to_return = new_p2r
                    changed = True
            if self.dirty:
                changed = True
                self.dirty.clear()
            if not changed:
                break
        # Final pass: evaluate every function once more, with stable
        # summaries, collecting sink findings.
        for qual in order:
            fn = self.model.functions[qual]
            fa = _FunctionAnalysis(self, fn, collect_sinks=True)
            fa.run()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self.findings

    # -- sinks -------------------------------------------------------------

    def _sink_rule(
        self, site: ResolvedCall, node: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """(rule, sink description) when this call is a sink."""
        name = site.attr_name or ""
        cls = (site.class_target or "").rpartition(".")[2]
        if name in _SCHEDULING_SINKS or cls == "Timeout" or name == "Timeout":
            return "REP101", f"scheduling call {name or cls}(...)"
        if cls == "SimResult" or name == "SimResult":
            return "REP102", "SimResult(...) construction"
        if cls in ("Scenario", "PlanItem") or name in ("Scenario", "PlanItem"):
            return "REP103", f"{cls or name}(...) scenario construction"
        if site.target:
            owner = site.target.rpartition(".")[0]
            owner_cls = self.model.classes.get(owner)
            if owner_cls is not None and any(
                c.name == "ScenarioGenerator"
                for c in self.model.mro(owner_cls)
            ):
                return "REP103", f"ScenarioGenerator method {name}(...)"
        return None

    def check_sink(
        self,
        fa: _FunctionAnalysis,
        site: ResolvedCall,
        node: ast.Call,
        arg_taints: List[Set[Taint]],
        kw_taints: Dict[str, Set[Taint]],
    ) -> None:
        hit = self._sink_rule(site, node)
        if hit is None:
            return
        rule, sink_desc = hit
        mod = fa.mod
        if mod.is_suppressed(node.lineno, rule):
            return
        tainted: Set[Taint] = set()
        for taints in arg_taints:
            tainted |= taints
        for taints in kw_taints.values():
            tainted |= taints
        for t in sorted(tainted):
            if t.kind == "param":
                continue
            key = (rule, mod.path, node.lineno, t.path, t.line)
            if key in self._seen:
                continue
            self._seen.add(key)
            sink_note = (
                f"{mod.path}:{node.lineno}: sink: {sink_desc} in "
                f"{_short(fa.fn.qualname)}"
            )
            self.findings.append(
                Finding(
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=rule,
                    message=(
                        f"{t.kind} value from {t.path}:{t.line} "
                        f"({t.desc}) reaches {sink_desc}"
                    ),
                    trace=t.trace(sink_note),
                )
            )


def run(model: ProjectModel, graph: CallGraph) -> List[Finding]:
    """Run the taint pass; returns REP101–REP103 findings."""
    return TaintPass(model, graph).run()
