"""Interprocedural call graph over the :class:`~.modules.ProjectModel`.

Resolution is tuned to what this codebase writes rather than full Python
semantics.  A call site resolves when it is one of:

* a direct call to a module-level function or imported function
  (``helper(x)``, ``tracegen.make_trace(...)``);
* a class constructor (``Environment(...)``, ``lard.LARDPolicy(...)``) —
  resolved to ``Class.__init__`` when the class defines or inherits one;
* a ``self.method(...)`` / ``cls.method(...)`` call, looked up through
  the project MRO of the enclosing class;
* ``super().method(...)`` — MRO lookup skipping the enclosing class;
* a method on a local/parameter whose class is known from an annotation
  or a ``x = ClassName(...)`` assignment in the same function, or on a
  ``self.<attr>`` whose class was inferred by the project model.

Anything else stays an *unresolved attribute call*: the edge records the
attribute name so name-based passes (taint sinks, conservative async
checks) can still reason about it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .modules import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    annotation_class_name,
    dotted_name,
)

__all__ = ["ResolvedCall", "CallGraph"]


@dataclass(frozen=True)
class ResolvedCall:
    """One call site inside a function."""

    caller: str
    node: ast.Call
    lineno: int
    #: Project qualname of the called function, when resolved.
    target: Optional[str] = None
    #: Project qualname of the class when the call constructs one.
    class_target: Optional[str] = None
    #: Trailing attribute name for unresolved ``obj.attr(...)`` calls
    #: (and for resolved method calls, for name-based sink matching).
    attr_name: Optional[str] = None
    #: Fully qualified external target ("time.sleep") when the call hits
    #: a tracked external module.
    external: Optional[str] = None


class _LocalTypes(ast.NodeVisitor):
    """Infer local-variable classes inside one function.

    Sources: parameter annotations, ``x: Cls = ...`` annotations, and
    ``x = ClassName(...)`` assignments.  Flow-insensitive — last write
    wins, which is accurate enough for lint-grade resolution.
    """

    def __init__(self, model: ProjectModel, fn: FunctionInfo) -> None:
        self.model = model
        self.mod = fn.module
        self.types: Dict[str, str] = {}
        args = fn.node.args  # type: ignore[attr-defined]
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for a in all_args:
            cls_name = annotation_class_name(a.annotation)
            if cls_name is None:
                continue
            qual = model.resolve(self.mod, cls_name)
            if qual in model.classes:
                self.types[a.arg] = qual
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                self._record(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls_name = annotation_class_name(node.annotation)
                qual = model.resolve(self.mod, cls_name) if cls_name else None
                if qual in model.classes:
                    self.types[node.target.id] = qual  # type: ignore[index]
                elif node.value is not None:
                    self._record([node.target], node.value)

    def _record(self, targets: List[ast.expr], value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        name = dotted_name(value.func)
        if name is None:
            return
        qual = self.model.resolve(self.mod, name)
        if qual not in self.model.classes:
            return
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                self.types[tgt.id] = qual  # type: ignore[assignment]


class CallGraph:
    """Call edges for every project function, plus reverse reachability."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: caller qualname -> call sites (in source order).
        self.calls: Dict[str, List[ResolvedCall]] = {}
        #: callee qualname -> caller qualnames.
        self.callers: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, model: ProjectModel) -> "CallGraph":
        graph = cls(model)
        for fn in model.functions.values():
            graph.calls[fn.qualname] = list(graph._resolve_function(fn))
        for caller, sites in graph.calls.items():
            for site in sites:
                if site.target:
                    graph.callers.setdefault(site.target, set()).add(caller)
        return graph

    # -- per-function resolution ------------------------------------------

    def _resolve_function(self, fn: FunctionInfo) -> Iterator[ResolvedCall]:
        locals_ = _LocalTypes(self.model, fn)
        body = fn.node.body  # type: ignore[attr-defined]
        for stmt in body:
            for node in ast.walk(stmt):
                # Stay inside this function: nested defs/lambdas get
                # their own entries (nested defs) or are treated as part
                # of the enclosing body (lambdas — their calls execute
                # in this frame eventually).
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Call):
                    yield self._resolve_call(fn, locals_, node)

    def _resolve_call(
        self, fn: FunctionInfo, locals_: _LocalTypes, node: ast.Call
    ) -> ResolvedCall:
        model = self.model
        mod = fn.module
        func = node.func

        external = mod.ext.call_target(func)
        if external is not None:
            return ResolvedCall(
                caller=fn.qualname, node=node, lineno=node.lineno,
                attr_name=func.attr if isinstance(func, ast.Attribute) else None,
                external=external,
            )

        # super().method(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and fn.cls is not None
        ):
            target = model.lookup_method(fn.cls, func.attr, skip_self=True)
            return ResolvedCall(
                caller=fn.qualname, node=node, lineno=node.lineno,
                target=target.qualname if target else None,
                attr_name=func.attr,
            )

        # self.method(...) / cls.method(...) / self.attr.method(...)
        if isinstance(func, ast.Attribute):
            recv = func.value
            recv_cls: Optional[ClassInfo] = None
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and fn.cls is not None
            ):
                recv_cls = fn.cls
            elif isinstance(recv, ast.Name) and recv.id in locals_.types:
                recv_cls = model.classes.get(locals_.types[recv.id])
            elif (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
                and fn.cls is not None
            ):
                attr_qual = None
                for c in model.mro(fn.cls):
                    if recv.attr in c.attr_types:
                        attr_qual = c.attr_types[recv.attr]
                        break
                if attr_qual:
                    recv_cls = model.classes.get(attr_qual)
            if recv_cls is not None:
                target = model.lookup_method(recv_cls, func.attr)
                if target is not None:
                    return ResolvedCall(
                        caller=fn.qualname, node=node, lineno=node.lineno,
                        target=target.qualname, attr_name=func.attr,
                    )
            # Dotted module path (``util.f()`` after ``from . import
            # util``, ``pkg.mod.Class(...)``)?
            name = dotted_name(func)
            if name is not None:
                qual = model.resolve(mod, name)
                if qual in model.functions:
                    return ResolvedCall(
                        caller=fn.qualname, node=node, lineno=node.lineno,
                        target=qual, attr_name=func.attr,
                    )
                if qual in model.classes:
                    ctor = model.lookup_method(model.classes[qual], "__init__")
                    return ResolvedCall(
                        caller=fn.qualname, node=node, lineno=node.lineno,
                        target=ctor.qualname if ctor else None,
                        class_target=qual, attr_name=func.attr,
                    )
            # Unresolved attribute call — keep the name.
            return ResolvedCall(
                caller=fn.qualname, node=node, lineno=node.lineno,
                attr_name=func.attr,
            )

        # Direct name (or dotted module path) call.
        name = dotted_name(func)
        if name is not None:
            qual = model.resolve(mod, name)
            if qual is not None:
                if qual in model.classes:
                    ctor = model.lookup_method(model.classes[qual], "__init__")
                    return ResolvedCall(
                        caller=fn.qualname, node=node, lineno=node.lineno,
                        target=ctor.qualname if ctor else None,
                        class_target=qual,
                        attr_name=name.rpartition(".")[2],
                    )
                if qual in model.functions:
                    return ResolvedCall(
                        caller=fn.qualname, node=node, lineno=node.lineno,
                        target=qual, attr_name=name.rpartition(".")[2],
                    )
            # Bare-name call to something we can't see (builtin, external
            # function): keep the trailing name for name-based matching.
            return ResolvedCall(
                caller=fn.qualname, node=node, lineno=node.lineno,
                attr_name=name.rpartition(".")[2],
            )

        return ResolvedCall(caller=fn.qualname, node=node, lineno=node.lineno)

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> List[ResolvedCall]:
        return self.calls.get(qualname, [])

    def resolved_callees(self, qualname: str) -> List[str]:
        return [c.target for c in self.calls.get(qualname, []) if c.target]

    def reachable_from(
        self,
        roots: List[str],
        *,
        stop: Optional[Set[str]] = None,
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure from ``roots``.

        Returns ``{qualname: path}`` where ``path`` is the chain of
        qualnames from a root to the function (inclusive).  Traversal
        does not descend *through* functions in ``stop`` (they are still
        reported as reached).
        """
        stop = stop or set()
        out: Dict[str, Tuple[str, ...]] = {}
        queue: List[Tuple[str, Tuple[str, ...]]] = [
            (r, (r,)) for r in roots if r in self.model.functions
        ]
        while queue:
            qual, path = queue.pop(0)
            if qual in out:
                continue
            out[qual] = path
            if qual in stop:
                continue
            for callee in self.resolved_callees(qual):
                if callee not in out:
                    queue.append((callee, path + (callee,)))
        return out
