"""simlint — repo-specific determinism linter for the simulator codebase.

The paper's results are reproducible only because every simulation run is
deterministic for a fixed seed: byte-identical ``repro reproduce`` reports,
exact ``throughput_rps`` equality in the bench regression gate, and the
scheduler/fast-path equivalence suites all depend on it.  simlint is an
AST-based static-analysis pass that catches the code patterns which break
that guarantee *before* they reach a run:

``REP001`` unseeded-global-rng
    Calls to the module-level ``random`` / ``numpy.random`` API (global,
    implicitly seeded state) in simulation code.  Use a seeded
    ``random.Random(seed)`` / ``numpy.random.default_rng(seed)`` instance.
``REP002`` unordered-iteration
    Iteration over a ``set``/``frozenset`` (or ``dict.keys()`` views used
    as an ordering source) feeding scheduling, dispatch, or server-set
    decisions.  Set iteration order depends on insertion history and — for
    str keys — the per-process hash seed.  Sort, or use an ordered
    structure.
``REP003`` wall-clock
    Wall-clock reads (``time.time``, ``datetime.now``, ...) inside the
    kernel/simulation packages.  Simulated code must read ``env.now``.
    The live substrate (``repro.live``) is explicitly exempt: there,
    wall-clock seconds *are* the policies' injected Clock.
``REP004`` id-ordering
    ``id()``-based ordering or hashing.  CPython ids are allocation
    addresses: they vary run to run and recycle, so any order derived from
    them is nondeterministic.
``REP005`` mutable-default
    Mutable default arguments — shared across calls, a classic source of
    state bleeding between otherwise independent runs.
``REP006`` swallowed-exception
    Bare ``except:`` or blanket ``except Exception: pass`` handlers.  In
    event callbacks these silently eat generator/callback failures the
    kernel relies on to surface broken runs.
``REP007`` unseeded-instance-rng
    Zero-argument RNG constructors (``random.Random()``,
    ``numpy.random.default_rng()``, ``numpy.random.RandomState()``) inside
    the fault-injection packages (``repro.faults``, ``repro.netfaults``,
    ``repro.chaos``).  An instance seeded from OS entropy makes every
    fault/loss schedule differ run to run; pass an explicit seed so
    injected failures are replayable.
``REP008`` fragile-oracle-check
    In chaos/oracle code (``repro.chaos``): comparing against a float
    literal with ``==``/``!=``, or an ``assert`` whose condition derives
    from a wall-clock read.  Float-equality oracles pass or fail on
    representation noise, and wall-clock asserts make a replayed
    scenario's verdict depend on machine speed — both break the
    "same scenario, same verdict" contract replay and shrinking rely on.

Suppression
-----------
Append ``# simlint: disable=REP002`` (comma-separate several rules, or
omit the ``=`` part to disable every rule) to the flagged line.  The
comment must sit on the same line the finding is reported at.

Usage::

    repro lint                      # lint src/ (the CI gate)
    repro lint src tests            # explicit paths
    repro lint --format json        # machine-readable output
    repro lint --select REP001,REP004

Exit status is 0 when no findings survive suppression, 1 otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "RULES", "lint_source", "lint_file", "lint_paths", "main"]

#: Rule id -> one-line description.  Derived from the table-driven
#: registry in :mod:`repro.analysis.rules` (the single source of truth
#: for ids, summaries, and ``--explain`` text); re-exported here for
#: backwards compatibility.
from .rules import RULES  # noqa: E402  (re-export)

#: Package directories whose files count as "simulation code" (REP001).
#: ``live`` is included: the loadtest's arrival process must be seeded
#: for replayable runs even though its clock is real.
SIM_SCOPE = frozenset(
    {"des", "sim", "servers", "cluster", "faults", "netfaults", "workload",
     "chaos", "live"}
)
#: Package directories where wall-clock reads are forbidden (REP003).
#: ``chaos`` is deliberately absent: its soak mode budgets *real*
#: minutes; REP008 polices the dangerous wall-clock use there instead.
KERNEL_SCOPE = frozenset({"des", "sim", "servers", "cluster", "faults",
                          "netfaults"})
#: Fault-injection packages where unseeded RNG instances are forbidden
#: (REP007): injected failures must replay exactly for a fixed seed.
FAULT_SCOPE = frozenset({"faults", "netfaults", "chaos"})
#: Chaos/oracle packages where fragile verdict checks are forbidden
#: (REP008).
CHAOS_SCOPE = frozenset({"chaos"})
#: The live substrate (``repro.live``): wall-clock reads are the *point*
#: there (real TCP seconds drive the policies' Clock), so REP003 and
#: REP008 are force-disabled — the override wins even when a live
#: package is nested under a kernel-scoped directory name.
LIVE_SCOPE = frozenset({"live"})

#: random-module attributes that are safe to call (seeded constructors and
#: state plumbing, not draws from the global generator).
_SAFE_RANDOM_ATTRS = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
#: numpy.random attributes that are safe (seeded-generator constructors).
_SAFE_NP_RANDOM_ATTRS = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator",
     "PCG64", "Philox", "MT19937", "SFC64"}
)
#: Wall-clock functions on the time module.
_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns", "localtime",
     "gmtime"}
)
#: Zero/implicit-argument "what time is it" constructors on datetime/date.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: Set-producing methods whose result is itself unordered.
_SET_OP_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
#: numpy.random constructors that take a seed as their first argument —
#: called with zero arguments they seed from OS entropy (REP007).
_SEEDABLE_NP_CTORS = frozenset({"default_rng", "RandomState"})
#: Callables for which a mutable result as a default argument is shared.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

_DISABLE_RE = re.compile(
    r"#\s*simlint:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding at a source location.

    Whole-program findings (REP101+) carry a ``trace``: the chain of
    steps from the nondeterminism source (or hotpath/async root) to the
    reported line, each step a human-readable ``path:line: note`` string.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    trace: Tuple[str, ...] = ()

    def render(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if not self.trace:
            return head
        steps = "\n".join(f"    {step}" for step in self.trace)
        return f"{head}\n{steps}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.trace:
            out["trace"] = list(self.trace)
        return out


def _scope_dirs(path: str) -> Set[str]:
    """Path components used for rule scoping (package directory names)."""
    return set(Path(path).parts)


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rules (``None`` = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


class _SetInference(ast.NodeVisitor):
    """First pass: collect names/attributes statically known to hold sets."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.set_attrs: Set[str] = set()

    @staticmethod
    def _is_set_expr(node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    @staticmethod
    def _is_set_annotation(node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(node, ast.Subscript):
            return _SetInference._is_set_annotation(node.value)
        if isinstance(node, ast.Attribute):  # typing.Set[...]
            return node.attr in ("Set", "FrozenSet")
        return False

    def _record_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.set_attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                self._record_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_expr(node.value) or self._is_set_annotation(
            node.annotation
        ):
            self._record_target(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if self._is_set_annotation(node.annotation):
            self.set_names.add(node.arg)
        self.generic_visit(node)


class _Checker(ast.NodeVisitor):
    """Second pass: emit findings."""

    def __init__(
        self,
        path: str,
        sets: _SetInference,
        active: Set[str],
    ) -> None:
        self.path = path
        self.sets = sets
        self.active = active
        self.findings: List[Finding] = []
        #: Local names bound to the random module (``import random [as r]``).
        self._random_mods: Set[str] = set()
        #: Local names bound to the numpy module (``import numpy as np``).
        self._numpy_mods: Set[str] = set()
        #: Local names bound to numpy.random itself.
        self._np_random_mods: Set[str] = set()
        #: Function names imported from random (``from random import choice``).
        self._random_funcs: Set[str] = set()
        #: Names bound to the time module.
        self._time_mods: Set[str] = set()
        #: Functions imported from time (``from time import time``).
        self._time_funcs: Set[str] = set()
        #: Names bound to datetime classes/module (datetime, date).
        self._datetime_names: Set[str] = set()
        #: Names bound to seedable RNG constructors (``from random import
        #: Random``, ``from numpy.random import default_rng``) — REP007
        #: flags zero-argument calls to these in fault-injection code.
        self._rng_ctors: Set[str] = set()

    # -- bookkeeping -------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.active:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_mods.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                if alias.name == "numpy.random" and alias.asname:
                    self._np_random_mods.add(alias.asname)
                else:
                    self._numpy_mods.add(bound)
            elif alias.name == "time":
                self._time_mods.add(bound)
            elif alias.name == "datetime":
                self._datetime_names.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    self._rng_ctors.add(alias.asname or alias.name)
                elif alias.name not in _SAFE_RANDOM_ATTRS:
                    self._random_funcs.add(alias.asname or alias.name)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_mods.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name in _SEEDABLE_NP_CTORS:
                    self._rng_ctors.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    self._time_funcs.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- REP001 / REP003: call-pattern rules -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # REP001 — module-level random API.
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in self._random_mods
                and func.attr not in _SAFE_RANDOM_ATTRS
            ):
                self._emit(
                    node,
                    "REP001",
                    f"call to random.{func.attr}() uses the global RNG; "
                    "use a seeded random.Random(seed) instance",
                )
            elif self._is_np_random(value) and (
                func.attr not in _SAFE_NP_RANDOM_ATTRS
            ):
                self._emit(
                    node,
                    "REP001",
                    f"call to numpy.random.{func.attr}() uses the global "
                    "RNG; use numpy.random.default_rng(seed)",
                )
        elif isinstance(func, ast.Name) and func.id in self._random_funcs:
            self._emit(
                node,
                "REP001",
                f"call to {func.id}() drawn from the global random module; "
                "use a seeded random.Random(seed) instance",
            )

        # REP007 — zero-argument seedable RNG constructors.
        self._check_unseeded_ctor(node)

        # REP003 — wall-clock reads.
        self._check_wall_clock(node)

        # REP004 — id()-keyed ordering/hashing.
        self._check_id_ordering(node)

        # REP002 — eager conversions of set-typed expressions.
        if isinstance(func, ast.Name):
            if func.id in ("list", "tuple", "enumerate", "iter") and node.args:
                self._check_unordered(node.args[0], f"{func.id}() over")
            elif func.id in ("min", "max") and node.args:
                # With a key function, ties resolve by iteration order.
                if any(kw.arg == "key" for kw in node.keywords):
                    self._check_unordered(
                        node.args[0], f"{func.id}(key=...) over"
                    )
        self.generic_visit(node)

    def _is_np_random(self, value: ast.AST) -> bool:
        """True for an expression denoting the numpy.random module."""
        if isinstance(value, ast.Name):
            return value.id in self._np_random_mods
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._numpy_mods
        )

    def _check_unseeded_ctor(self, node: ast.Call) -> None:
        """REP007: a seedable RNG constructor called with no seed."""
        if node.args or node.keywords:
            return
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in self._random_mods
                and func.attr == "Random"
            ):
                name = "random.Random"
            elif self._is_np_random(value) and (
                func.attr in _SEEDABLE_NP_CTORS
            ):
                name = f"numpy.random.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self._rng_ctors:
            name = func.id
        if name is not None:
            self._emit(
                node,
                "REP007",
                f"{name}() with no seed draws entropy from the OS; "
                "fault-injection schedules must replay for a fixed seed — "
                "pass an explicit seed",
            )

    def _wall_clock_name(self, node: ast.Call) -> Optional[str]:
        """A printable name when ``node`` is a wall-clock read."""
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in self._time_mods
                and func.attr in _TIME_ATTRS
            ):
                return f"time.{func.attr}"
            if func.attr in _DATETIME_ATTRS and not node.args:
                root = value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in self._datetime_names
                ):
                    return ast.unparse(func)
        elif isinstance(func, ast.Name) and func.id in self._time_funcs:
            return func.id
        return None

    def _check_wall_clock(self, node: ast.Call) -> None:
        name = self._wall_clock_name(node)
        if name is not None:
            self._emit(
                node,
                "REP003",
                f"{name}() reads the wall clock; simulation code must "
                "use env.now",
            )

    # -- REP004 ------------------------------------------------------------

    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
        return False

    def _check_id_ordering(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "sort":
            name = "sort"
        if name in ("sorted", "min", "max", "sort"):
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if isinstance(kw.value, ast.Name) and kw.value.id == "id":
                    self._emit(
                        node,
                        "REP004",
                        f"{name}(key=id) orders by object address; ids vary "
                        "between runs",
                    )
                elif isinstance(kw.value, ast.Lambda) and self._contains_id_call(
                    kw.value.body
                ):
                    self._emit(
                        node,
                        "REP004",
                        f"{name}() key derives from id(); ids vary between "
                        "runs",
                    )
        elif name == "hash" and node.args and self._contains_id_call(
            node.args[0]
        ):
            self._emit(
                node,
                "REP004",
                "hash(id(...)) derives a hash from an object address; ids "
                "vary between runs",
            )

    def visit_Compare(self, node: ast.Compare) -> None:
        ordering = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        operands = [node.left, *node.comparators]
        if any(isinstance(op, ordering) for op in node.ops):
            if any(
                isinstance(o, ast.Call)
                and isinstance(o.func, ast.Name)
                and o.func.id == "id"
                for o in operands
            ):
                self._emit(
                    node,
                    "REP004",
                    "comparison of id() values orders by object address; "
                    "ids vary between runs",
                )
        # REP008 — float-literal equality in chaos/oracle code.
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in operands:
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    self._emit(
                        node,
                        "REP008",
                        f"==/!= against the float literal "
                        f"{operand.value!r}: oracle verdicts must not "
                        "hinge on exact float representation; compare "
                        "with an inequality or an explicit tolerance",
                    )
                    break
        self.generic_visit(node)

    # -- REP008 (wall-clock asserts) ----------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        for sub in ast.walk(node.test):
            if isinstance(sub, ast.Call):
                name = self._wall_clock_name(sub)
                if name is not None:
                    self._emit(
                        node,
                        "REP008",
                        f"assert derives from {name}(): a wall-clock "
                        "condition makes the verdict depend on machine "
                        "speed; assert on simulated state instead",
                    )
                    break
        self.generic_visit(node)

    # -- REP002 ------------------------------------------------------------

    def _is_set_typed(self, node: ast.AST) -> Optional[str]:
        """A short description when ``node`` is statically set-typed."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a {func.id}()"
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return "dict.keys()"
                if func.attr in _SET_OP_METHODS:
                    return f"a set .{func.attr}() result"
        if isinstance(node, ast.Name) and node.id in self.sets.set_names:
            return f"the set {node.id!r}"
        if (
            isinstance(node, ast.Attribute)
            and node.attr in self.sets.set_attrs
        ):
            return f"the set attribute {node.attr!r}"
        return None

    def _check_unordered(self, iter_node: ast.AST, context: str) -> None:
        desc = self._is_set_typed(iter_node)
        if desc is not None:
            self._emit(
                iter_node,
                "REP002",
                f"{context} {desc}: iteration order is not deterministic "
                "across runs; sort or use an ordered structure",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered(node.iter, "for-loop over")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_unordered(node.iter, "for-loop over")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_unordered(gen.iter, "comprehension over")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- REP005 ------------------------------------------------------------

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            return name in _MUTABLE_FACTORIES
        return False

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable_default(default):
                self._emit(
                    default,
                    "REP005",
                    "mutable default argument is shared across calls; "
                    "default to None and allocate inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REP006 ------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node,
                "REP006",
                "bare except: catches and hides every failure (including "
                "kernel Interrupts); name the exceptions",
            )
        elif self._is_blanket(node.type) and self._only_passes(node.body):
            self._emit(
                node,
                "REP006",
                "blanket exception handler swallows callback/generator "
                "failures; name the exceptions or handle the error",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_blanket(node: ast.AST) -> bool:
        names = []
        if isinstance(node, ast.Name):
            names = [node.id]
        elif isinstance(node, ast.Tuple):
            names = [e.id for e in node.elts if isinstance(e, ast.Name)]
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _only_passes(body: Sequence[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in body
        )


def _active_rules(path: str, select: Optional[Set[str]]) -> Set[str]:
    active = set(RULES) if select is None else set(select)
    dirs = _scope_dirs(path)
    if not dirs & SIM_SCOPE:
        active.discard("REP001")
    if not dirs & KERNEL_SCOPE:
        active.discard("REP003")
    if not dirs & FAULT_SCOPE:
        active.discard("REP007")
    if not dirs & CHAOS_SCOPE:
        active.discard("REP008")
    if dirs & LIVE_SCOPE:
        # The live substrate legitimately reads wall clocks (REP003) and
        # times real requests (REP008's wall-clock-assert half); the
        # override beats the kernel/chaos scopes so a ``live`` package
        # stays lintable for everything else wherever it sits.
        active.discard("REP003")
        active.discard("REP008")
    return active


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one source string; ``path`` drives rule scoping."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    sets = _SetInference()
    sets.visit(tree)
    checker = _Checker(path, sets, _active_rules(path, select))
    checker.visit(tree)
    suppressed = _suppressions(source)
    out = []
    for finding in checker.findings:
        rules = suppressed.get(finding.line, ())
        if rules is None or finding.rule in rules:
            continue
        out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out


def lint_file(path: str, select: Optional[Set[str]] = None) -> List[Finding]:
    """Lint one file."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select)


_EXCLUDED_DIRS = {"__pycache__", ".git", "build", "dist", ".venv"}


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            files.append(str(p))
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _EXCLUDED_DIRS or any(
                    part.endswith(".egg-info") for part in sub.parts
                ):
                    continue
                files.append(str(sub))
    return files


def lint_paths(
    paths: Sequence[str], select: Optional[Set[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns (findings, files_checked)."""
    files = _python_files(paths)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, select=select))
    return findings, len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro lint`` entry point.

    The full CLI (whole-program passes, --baseline, --sarif, --explain)
    lives in :mod:`repro.analysis.engine`; this delegate keeps the
    historical ``repro.analysis.simlint.main`` import path working.
    """
    from .engine import main as engine_main

    return engine_main(argv)


if __name__ == "__main__":
    sys.exit(main())
