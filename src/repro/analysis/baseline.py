"""Finding baselines: adopt the existing debt, fail only on new findings.

A baseline maps a *fingerprint* to how many findings carry it.  The
fingerprint hashes the rule id, the normalized file path, and the
whitespace-stripped text of the source line — deliberately not the line
*number*, so unrelated edits that shift code up or down don't invalidate
the baseline, while any change to the flagged line itself surfaces the
finding again.  Occurrence counting keeps duplicate identical lines
honest: two findings on two identical ``self.x = []`` lines need a
baseline count of 2.

Workflow: ``repro lint --write-baseline .simlint-baseline.json`` adopts
the current findings; ``repro lint --baseline .simlint-baseline.json``
then exits 0 while only baselined findings exist and nonzero the moment
a *new* one appears (stale entries are reported informationally).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from .simlint import Finding

__all__ = [
    "fingerprint",
    "generate",
    "save",
    "load",
    "compare",
]

_FORMAT = "simlint-baseline-v1"


def _norm_path(path: str) -> str:
    return Path(path).as_posix()


def fingerprint(finding: Finding, line_text: str) -> str:
    """Stable id for one finding: rule | path | stripped line text."""
    key = f"{finding.rule}|{_norm_path(finding.path)}|{line_text.strip()}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def generate(
    findings: List[Finding], get_line: Callable[[str, int], str]
) -> Dict[str, object]:
    counts: Dict[str, int] = {}
    meta: Dict[str, Dict[str, object]] = {}
    for f in findings:
        text = get_line(f.path, f.line)
        fp = fingerprint(f, text)
        counts[fp] = counts.get(fp, 0) + 1
        meta.setdefault(
            fp,
            {
                "rule": f.rule,
                "path": _norm_path(f.path),
                "line_text": text.strip(),
            },
        )
    return {
        "format": _FORMAT,
        "counts": {fp: counts[fp] for fp in sorted(counts)},
        "entries": {fp: meta[fp] for fp in sorted(meta)},
    }


def save(path: str, data: Dict[str, object]) -> None:
    Path(path).write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load(path: str) -> Dict[str, object]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"{path}: not a {_FORMAT} file "
            f"(format={data.get('format')!r})"
        )
    return data


def compare(
    findings: List[Finding],
    baseline: Dict[str, object],
    get_line: Callable[[str, int], str],
) -> Tuple[List[Finding], int]:
    """Split current findings against a baseline.

    Returns ``(new_findings, stale_count)`` where ``new_findings`` are
    findings whose fingerprint occurs more often now than the baseline
    allows, and ``stale_count`` is the number of baselined occurrences
    that no longer exist (candidates for regeneration).
    """
    allowed: Dict[str, int] = dict(baseline.get("counts", {}))  # type: ignore[arg-type]
    used: Dict[str, int] = {}
    new: List[Finding] = []
    for f in findings:
        fp = fingerprint(f, get_line(f.path, f.line))
        used[fp] = used.get(fp, 0) + 1
        if used[fp] > allowed.get(fp, 0):
            new.append(f)
    stale = sum(
        max(0, count - used.get(fp, 0)) for fp, count in allowed.items()
    )
    return new, stale
