"""Substrate-neutrality pass for overload components (REP108).

The overload package (admission controller, circuit breakers, adaptive
concurrency limit) runs the *same object* on both substrates: the DES
hands it simulated time, the live front-end hands it wall time — always
as a ``now`` argument.  A component that reads a clock itself breaks
that contract silently: the sim side stops replaying byte-identically
(wall time leaks into limit trajectories and breaker cooldowns), and
the ISSUE's sim-vs-live comparisons lose their meaning.

The check is deliberately blunt: inside any ``overload`` package
module, *importing* ``time`` or ``datetime`` is a finding, as is any
aliased call that resolves to them (``from time import monotonic as
m``).  There is no legitimate clock read in these components — time is
an argument, full stop — so banning the import catches every variant
without call-site whack-a-mole.
"""

from __future__ import annotations

import ast
from typing import List

from .callgraph import CallGraph
from .modules import ModuleInfo, ProjectModel
from .simlint import Finding

__all__ = ["run"]

_RULE = "REP108"

#: Modules whose mere import inside the overload package is a finding.
_CLOCK_MODULES = ("time", "datetime")


def _is_overload_module(mod: ModuleInfo) -> bool:
    return "overload" in mod.name.split(".")


def _clock_root(target: str) -> str | None:
    root = target.split(".")[0]
    return root if root in _CLOCK_MODULES else None


def run(model: ProjectModel, graph: CallGraph) -> List[Finding]:
    del graph  # import/call-shape check; no interprocedural reasoning
    findings: List[Finding] = []
    for mod in model.modules.values():
        if not _is_overload_module(mod):
            continue
        findings.extend(_check_module(mod))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _check_module(mod: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []

    def report(line: int, col: int, what: str, note: str) -> None:
        if mod.is_suppressed(line, _RULE):
            return
        findings.append(
            Finding(
                path=mod.path, line=line, col=col, rule=_RULE,
                message=(
                    f"{what}: overload components take `now` as an "
                    "argument and never read a clock — wall time here "
                    "breaks byte-identical sim replay and sim-vs-live "
                    "scoring"
                ),
                trace=(f"{mod.path}:{line}: {note}",),
            )
        )

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = _clock_root(alias.name)
                if root is not None:
                    report(
                        node.lineno, node.col_offset + 1,
                        f"import of {alias.name!r} in {mod.name}",
                        f"import {alias.name}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            root = _clock_root(node.module)
            if root is not None:
                names = ", ".join(a.name for a in node.names)
                report(
                    node.lineno, node.col_offset + 1,
                    f"import from {node.module!r} in {mod.name}",
                    f"from {node.module} import {names}",
                )
        elif isinstance(node, ast.Call):
            # Aliased calls that resolve to a clock module through the
            # external-import maps (covers indirect spellings the
            # import scan above would already flag, and any future
            # injection of a clock callable under a local name).
            target = mod.ext.call_target(node.func)
            if target is not None and _clock_root(target) is not None:
                report(
                    node.lineno, node.col_offset + 1,
                    f"call to {target} in {mod.name}",
                    f"{ast.unparse(node.func)}(...) resolves to {target}",
                )
    return findings
