"""``repro chaos`` — run, replay, shrink, and soak chaos scenarios.

Subcommands::

    repro chaos run --trials 200 --seed 42      # a seeded sweep
    repro chaos replay scenario.json            # one stored scenario
    repro chaos shrink scenario.json            # minimize a failure
    repro chaos soak --minutes 10 --seed 7      # bounded wall-clock soak

``run`` and ``replay`` print deterministic reports (CI diffs them
byte-for-byte); ``shrink`` writes the minimal reproducer next to the
input with a ``.min.json`` suffix plus the exact replay line.  Exit
status is 0 when every oracle passed and 1 otherwise, so the commands
gate in CI directly.

Soak mode is the one place the chaos package may read the wall clock:
it budgets *real* minutes, not simulated ones.  The chaos package is
deliberately outside simlint's kernel scope for exactly this reason —
everything else here stays wall-clock-free so runs replay exactly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence

from .generator import DEFAULT_POLICIES, ScenarioGenerator
from .oracle import OracleConfig
from .runner import render_report, run_scenario
from .shrink import render_shrink, shrink_scenario
from .spec import ChaosSpecError, Scenario

__all__ = ["main"]


def _oracle_config(ns: argparse.Namespace) -> OracleConfig:
    return OracleConfig(strict=ns.strict)


def _generator(ns: argparse.Namespace) -> ScenarioGenerator:
    return ScenarioGenerator(
        ns.seed,
        policies=tuple(ns.policies.split(",")) if ns.policies
        else DEFAULT_POLICIES,
        trace=ns.trace,
        requests=ns.requests,
        kinds=tuple(ns.kinds.split(",")) if ns.kinds else None,
    )


def _sweep(
    gen: ScenarioGenerator,
    trials: Sequence[int],
    config: OracleConfig,
    out_dir: Optional[str],
    quiet: bool,
) -> int:
    """Run the given trial indices; returns the number of failures."""
    failures = 0
    for trial in trials:
        scenario = gen.generate(trial)
        outcome = run_scenario(scenario, config)
        if outcome.passed:
            if not quiet:
                print(render_report(outcome))
        else:
            failures += 1
            print(render_report(outcome))
            if out_dir is not None:
                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, f"{scenario.name}.json")
                scenario.save(path)
                print(f"  scenario saved: {path}")
                print(f"  replay: {scenario.replay_cli(path)}")
    return failures


def _cmd_run(ns: argparse.Namespace) -> int:
    gen = _generator(ns)
    config = _oracle_config(ns)
    print(
        f"chaos run: {ns.trials} trials, seed {ns.seed}, "
        f"policies {','.join(gen.policies)}, trace {gen.trace}"
    )
    failures = _sweep(gen, range(ns.trials), config, ns.out, ns.quiet)
    print(
        f"chaos run: {ns.trials - failures}/{ns.trials} trials passed "
        f"all oracles"
    )
    return 1 if failures else 0


def _cmd_replay(ns: argparse.Namespace) -> int:
    scenario = Scenario.load(ns.scenario)
    outcome = run_scenario(scenario, _oracle_config(ns))
    print(render_report(outcome))
    return 0 if outcome.passed else 1


def _cmd_shrink(ns: argparse.Namespace) -> int:
    scenario = Scenario.load(ns.scenario)
    config = _oracle_config(ns)
    try:
        result = shrink_scenario(
            scenario, oracle_config=config, max_runs=ns.max_runs
        )
    except ValueError as exc:
        print(f"chaos shrink: {exc}", file=sys.stderr)
        return 2
    out_path = ns.out or _default_min_path(ns.scenario)
    result.scenario.save(out_path)
    print(render_shrink(result, out_path))
    return 0


def _default_min_path(path: str) -> str:
    base = path[:-5] if path.endswith(".json") else path
    return base + ".min.json"


def _cmd_soak(ns: argparse.Namespace) -> int:
    """Keep sweeping fresh trials until the wall-clock budget expires.

    Failing scenarios are saved (and shrunk, unless --no-shrink) so an
    unattended soak leaves minimal reproducers behind, not just logs.
    """
    gen = _generator(ns)
    config = _oracle_config(ns)
    out_dir = ns.out or "chaos-soak"
    deadline = time.monotonic() + ns.minutes * 60.0
    trial = 0
    failures = 0
    while time.monotonic() < deadline and trial < ns.max_trials:
        scenario = gen.generate(trial)
        outcome = run_scenario(scenario, config)
        if not outcome.passed:
            failures += 1
            print(render_report(outcome))
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"{scenario.name}.json")
            scenario.save(path)
            print(f"  scenario saved: {path}")
            if not ns.no_shrink:
                result = shrink_scenario(
                    scenario, oracle_config=config, max_runs=ns.max_runs
                )
                min_path = _default_min_path(path)
                result.scenario.save(min_path)
                print(render_shrink(result, min_path))
        trial += 1
    print(
        f"chaos soak: {trial} trials in the budget, "
        f"{failures} oracle failure(s)"
    )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Randomized fault-scenario fuzzing with invariant "
        "oracles, deterministic replay, and scenario shrinking.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--strict", action="store_true",
            help="treat any failed or shed request as a violation",
        )

    def add_gen(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42,
                       help="sweep seed (default 42)")
        p.add_argument("--policies", default="",
                       help="comma-separated policy list "
                       f"(default {','.join(DEFAULT_POLICIES)})")
        p.add_argument("--trace", default="calgary",
                       help="trace preset (default calgary)")
        p.add_argument("--requests", type=int, default=1200,
                       help="requests per trial (default 1200)")
        p.add_argument("--kinds", default="",
                       help="comma-separated plan-item kinds to sample "
                       "(e.g. ramp,churn; default: the full pool)")

    p_run = sub.add_parser("run", help="run a seeded sweep of trials")
    add_gen(p_run)
    add_common(p_run)
    p_run.add_argument("--trials", type=int, default=20,
                       help="number of trials (default 20)")
    p_run.add_argument("--out", default=None,
                       help="directory for failing scenario files")
    p_run.add_argument("--quiet", action="store_true",
                       help="print only failing trials and the summary")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser(
        "replay", help="re-run one stored scenario file"
    )
    p_replay.add_argument("scenario", help="scenario JSON file")
    add_common(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_shrink = sub.add_parser(
        "shrink", help="minimize a failing scenario file"
    )
    p_shrink.add_argument("scenario", help="failing scenario JSON file")
    add_common(p_shrink)
    p_shrink.add_argument("--max-runs", type=int, default=200,
                          help="shrink evaluation budget (default 200)")
    p_shrink.add_argument("--out", default=None,
                          help="minimal reproducer path "
                          "(default <scenario>.min.json)")
    p_shrink.set_defaults(func=_cmd_shrink)

    p_soak = sub.add_parser(
        "soak", help="sweep fresh trials until a wall-clock budget expires"
    )
    add_gen(p_soak)
    add_common(p_soak)
    p_soak.add_argument("--minutes", type=float, default=10.0,
                        help="wall-clock budget (default 10)")
    p_soak.add_argument("--max-trials", type=int, default=100000,
                        help="hard trial cap (default 100000)")
    p_soak.add_argument("--max-runs", type=int, default=200,
                        help="shrink evaluation budget per failure")
    p_soak.add_argument("--out", default=None,
                        help="directory for reproducers (default chaos-soak)")
    p_soak.add_argument("--no-shrink", action="store_true",
                        help="save failing scenarios without shrinking")
    p_soak.set_defaults(func=_cmd_soak)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        return ns.func(ns)
    except ChaosSpecError as exc:
        print(f"chaos: invalid scenario — {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
