"""Scenario execution: spec -> simulation -> verdict.

:func:`run_scenario` is the single execution path shared by ``repro
chaos run`` (fresh scenarios), ``repro chaos replay`` (a scenario file),
and the shrinker's predicate (candidate scenarios).  Everything the run
does derives from the :class:`~repro.chaos.spec.Scenario` alone, so the
same spec always produces the same :class:`~repro.sim.results.SimResult`
and the same violations — byte-identical replay reports are what the CI
chaos-smoke job diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..cluster import ClusterConfig
from ..experiments.flashcrowd import flash_crowd_trace
from ..faults import RetryPolicy
from ..model import MB
from ..overload import OverloadControl
from ..servers import make_policy
from ..sim import SimResult, Simulation
from ..workload import Trace, synthesize
from ..workload.tracegen import flash_ramp_trace, popularity_churn_trace
from .oracle import ChaosOracle, OracleConfig, Violation
from .spec import Scenario

__all__ = [
    "ChaosOutcome",
    "run_scenario",
    "build_trace",
    "build_policy",
    "build_overload",
    "render_report",
]


@dataclass(frozen=True)
class ChaosOutcome:
    """One scenario's run: results, oracle verdicts, bookkeeping."""

    scenario: Scenario
    #: None when the run ended early (stranded requests — itself a
    #: conservation violation, so ``violations`` is never empty then).
    result: Optional[SimResult]
    violations: List[Violation]
    #: The driver's early-end error message, if any.
    early_error: Optional[str]
    #: Whole-run served fraction (completed / generated).
    served_fraction: float
    requests_failed: int
    requests_retried: int

    @property
    def passed(self) -> bool:
        return not self.violations


def build_trace(scenario: Scenario) -> Trace:
    """The workload for a scenario: preset synthesis, then every
    workload-perturbation item (flash/ramp/churn) applied in plan order.

    The flash rewrite keeps ``scenario.seed`` (stored scenarios from
    before ramp/churn existed must replay byte-identically); ramp and
    churn derive per-item seeds from the plan position so two items of
    the same kind would not share randomness.
    """
    trace = synthesize(
        scenario.trace, num_requests=scenario.requests, seed=scenario.seed
    )
    for position, item in enumerate(scenario.workload_items()):
        if item.kind == "flash":
            trace = flash_crowd_trace(
                trace,
                spike_start=item.start,
                spike_length=item.end - item.start,
                hot_share=item.share,
                hot_rank=item.rank,
                seed=scenario.seed,
            )
        elif item.kind == "ramp":
            trace = flash_ramp_trace(
                trace,
                ramp_start=item.start,
                ramp_end=item.end,
                peak_share=item.share,
                hot_rank=item.rank,
                seed=scenario.seed + position + 1,
            )
        elif item.kind == "churn":
            trace = popularity_churn_trace(
                trace,
                churn_start=item.start,
                churn_end=item.end,
                intensity=item.share,
                seed=scenario.seed + position + 1,
            )
    return trace


def build_policy(scenario: Scenario):
    """The scenario's policy instance, with per-policy knobs applied.

    Shared with the live chaos bridge so sim and live runs of the same
    spec configure the policy identically.
    """
    kwargs: Dict[str, Any] = {}
    if scenario.policy == "l2s" and scenario.view_max_age_s is not None:
        kwargs["view_max_age_s"] = scenario.view_max_age_s
    if scenario.policy == "lard-ng" and scenario.failover_s is not None:
        kwargs["failover_s"] = scenario.failover_s
    return make_policy(scenario.policy, **kwargs)


# Backward-compatible alias (pre-live-bridge private name).
_build_policy = build_policy


def build_overload(scenario: Scenario) -> Optional[OverloadControl]:
    """The scenario's overload control, or ``None`` when unconfigured.

    Shared with the live chaos bridge, like :func:`build_policy`, so
    both substrates gate the same spec with the same controller: an
    ``admission_limit`` gives a static in-flight cap, a ``deadline_s``
    alone engages the AIMD adaptive limit, and either one arms
    deadline-aware queue shedding.
    """
    if scenario.admission_limit is None and scenario.deadline_s is None:
        return None
    return OverloadControl.default(
        scenario.nodes,
        max_inflight=scenario.admission_limit,
        deadline_s=scenario.deadline_s,
        limiter_mode=None if scenario.admission_limit is not None else "aimd",
        seed=scenario.seed,
    )


def _baseline_times(
    scenario: Scenario,
    oracle: ChaosOracle,
    sanitize: Optional[bool],
) -> Optional[List[float]]:
    """Completion timestamps of the counterfactual no-perturbation run.

    The metastable oracle scores the perturbed run's tail against the
    *same scenario minus its workload items*: identical seed, trace
    base, faults, and retries, so the only tail-rate difference the two
    runs can show is damage the perturbation left behind.  Skipped (and
    the metastable check with it) when the scenario carries no workload
    items or the check is disabled.
    """
    if not scenario.workload_items():
        return None
    if oracle.config.metastable_ratio <= 0.0:
        return None
    trace = synthesize(
        scenario.trace, num_requests=scenario.requests, seed=scenario.seed
    )
    sim = Simulation(
        trace,
        build_policy(scenario),
        ClusterConfig(
            nodes=scenario.nodes,
            cache_bytes=scenario.cache_mb * MB,
            net_faults=scenario.netfault_config(),
        ),
        warmup_fraction=0.1,
        passes=1,
        seed=scenario.seed,
        faults=scenario.fault_schedule(),
        retry=RetryPolicy(max_retries=scenario.retries),
        overload=build_overload(scenario),
        record_timeline=True,
        sanitize=sanitize,
    )
    try:
        sim.run()
    except RuntimeError:
        return None  # no healthy baseline to compare against
    return sim.completion_times


def run_scenario(
    scenario: Scenario,
    oracle_config: Optional[OracleConfig] = None,
    sanitize: Optional[bool] = None,
) -> ChaosOutcome:
    """Execute one scenario under the full oracle catalog."""
    trace = build_trace(scenario)
    config = ClusterConfig(
        nodes=scenario.nodes,
        cache_bytes=scenario.cache_mb * MB,
        net_faults=scenario.netfault_config(),
    )
    sim = Simulation(
        trace,
        build_policy(scenario),
        config,
        warmup_fraction=0.1,
        passes=1,
        seed=scenario.seed,
        faults=scenario.fault_schedule(),
        retry=RetryPolicy(max_retries=scenario.retries),
        overload=build_overload(scenario),
        # Completion timestamps feed the metastable-failure oracle
        # (post-perturbation goodput re-convergence).
        record_timeline=bool(scenario.workload_items()),
        sanitize=sanitize,
    )
    oracle = ChaosOracle(scenario, oracle_config)
    oracle.attach(sim)
    result: Optional[SimResult] = None
    early: Optional[str] = None
    try:
        result = sim.run()
    except RuntimeError as exc:
        early = str(exc)
    violations = oracle.finish(
        early, baseline_times=_baseline_times(scenario, oracle, sanitize)
    )
    generated = max(1, sim._next)
    return ChaosOutcome(
        scenario=scenario,
        result=result,
        violations=violations,
        early_error=early,
        served_fraction=sim._completed / generated,
        requests_failed=sim._failed,
        requests_retried=sim._retried,
    )


def render_report(outcome: ChaosOutcome) -> str:
    """Deterministic text report for one outcome (replay diffs this)."""
    s = outcome.scenario
    lines = [
        s.describe(),
        f"  plan events: {s.event_count()}  "
        f"retries/request: {s.retries}  horizon est: {s.horizon_s:g}s",
    ]
    r = outcome.result
    if r is not None:
        lines.append(
            f"  served {r.requests_measured + r.requests_warmup}"
            f"/{r.requests_generated} "
            f"(fraction {outcome.served_fraction:.4f}), "
            f"failed {outcome.requests_failed}, "
            f"retried {outcome.requests_retried}, "
            f"shed {r.requests_shed}"
        )
        lines.append(
            f"  measured {r.requests_measured} requests at "
            f"{r.throughput_rps:.1f} req/s over {r.sim_seconds:.4f}s, "
            f"miss {r.miss_rate:.4f}, forwarded {r.forwarded_fraction:.4f}"
        )
    else:
        lines.append(
            f"  RUN ENDED EARLY: {outcome.early_error} "
            f"(served fraction {outcome.served_fraction:.4f})"
        )
    if outcome.violations:
        lines.append(f"  VIOLATIONS ({len(outcome.violations)}):")
        for v in outcome.violations:
            lines.append(f"    {v.render()}")
    else:
        lines.append("  oracles: all passed")
    return "\n".join(lines)
