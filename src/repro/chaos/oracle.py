"""Invariant oracles: what must hold on *every* run, whatever the plan.

Two layers share one catalog:

**Mid-run sampler** (cheap, every ``horizon/64`` simulated seconds):

* monotonic simulated time — ``env.now`` never decreases between
  samples;
* injection bounds — requests finished never exceed requests
  generated, generated never exceed the trace total;
* cache-capacity bound — no node's LRU cache holds more bytes than its
  memory;
* connection-count sanity — no node reports negative open connections;
* policy structural invariants — :meth:`DistributionPolicy.
  check_invariants` (L2S/LARD server-set and load-view bounds).

**Post-run checks** (exact, on the closed books):

* request conservation — every generated request is served, failed, or
  (for a run that ended early) identified as stranded in flight;
  delegated to :meth:`repro.sim.results.SimResult.verify` when a result
  exists, recomputed from driver counters when the run died before one
  was built;
* per-kind message reconciliation — ``sent == delivered + dropped +
  in-flight`` for every message kind, computed straight from the
  interconnect counters so it covers runs with *and* without a netfault
  layer;
* availability floor — the served fraction never drops below the
  analytic floor implied by the fault plan
  (:func:`availability_floor`); with a plan containing nothing
  disruptive the floor is exactly 1 and a single failed request is a
  violation;
* metastable-failure detection — after a workload perturbation window
  (flash/ramp/churn) ends, the completion rate over the trace's tail
  must re-converge to at least ``metastable_ratio`` of a yardstick
  rate: the rate a *counterfactual baseline* run (same seed, faults,
  and trace — minus the workload perturbations) achieves over the
  identical tail window, or the run's own pre-window rate (which
  exonerates bounded cache re-warm still in progress).  A healthy
  cluster recovers when the trigger is removed; one stuck in a bad
  equilibrium (thrashed caches, queues full of doomed work) sits
  10-100x below both yardsticks — the signature of metastable failure,
  and exactly what admission control exists to prevent.  Comparing the
  same window of the same trace across the two runs cancels the
  trace's intrinsic segment-to-segment variance (size and popularity
  mix swing raw short-window rates ~2x with no perturbation at all),
  and the tail is measured *before* the closed-loop drain (the last
  ~MPL completions finish with falling concurrency as the trace runs
  out, so their rate says nothing about the cluster's equilibrium);
* the mid-run checks once more, on final state.

The floor is deliberately generous for disruptive plans (a SPOF policy
under a front-end crash may legitimately fail most of a window); its
sharp edge is the clean case, where the arithmetic is exact.  Strict
mode (``OracleConfig(strict=True)``) upgrades *any* failed or shed
request to a violation — the knob the planted-failure fixture and the
shrinker demo use to turn expected degradation into a checkable
property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .spec import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.driver import Simulation

__all__ = ["Violation", "OracleConfig", "ChaosOracle", "availability_floor"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach."""

    #: Which oracle fired ("request_conservation", "message_books",
    #: "availability_floor", "cache_bound", "policy_invariant",
    #: "monotonic_time", "strict_service", ...).
    check: str
    #: Human-readable specifics.
    detail: str

    def render(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass(frozen=True)
class OracleConfig:
    """Oracle knobs for one run."""

    #: Treat any failed or shed request as a violation, regardless of the
    #: fault plan (planted-failure fixtures and shrinking demos).
    strict: bool = False
    #: Mid-run sample count across the estimated horizon (0 disables the
    #: sampler; the post-run checks always run).
    midrun_samples: int = 64
    #: Absolute slack subtracted from the availability floor of
    #: disruptive plans, on top of the closed-loop in-flight allowance.
    slack: float = 0.05
    #: Post-perturbation completion rate must reach this fraction of the
    #: no-perturbation baseline's rate over the same tail window, or of
    #: the run's own pre-window rate (0 disables the metastable check).
    metastable_ratio: float = 0.7
    #: Width, as a fraction of the trace, of the tail comparison window
    #: for the metastable check.
    metastable_window: float = 0.15


def availability_floor(scenario: Scenario, slack: float = 0.05) -> float:
    """Lower bound on the served fraction the fault plan permits.

    Returns exactly 1.0 when the plan contains nothing that can cause a
    request failure (no crash/partition/outage, no loss) — the sharp
    case.  Otherwise subtracts a *generous* penalty per disruptive item:
    SPOF policies (lard, lard-ng) may blackout for a whole crash or
    partition window; distributed policies lose at most the in-flight
    work plus a window share.  The closed-loop multiprogramming level
    bounds how many requests are exposed to any instantaneous event,
    and enters as an absolute allowance.
    """
    spof = scenario.policy in ("lard", "lard-ng")
    horizon = scenario.horizon_s
    penalty = 0.0
    disruptive = False
    for item in scenario.plan:
        if item.kind in ("crash", "partition", "link_out"):
            disruptive = True
            dur = (item.end - item.start) if item.end is not None else horizon
            share = min(1.0, max(0.0, dur) / horizon)
            if item.kind == "crash":
                weight = 1.5 if spof else 0.5
            elif item.kind == "partition":
                weight = 1.5 if spof else 1.0
            else:  # link_out: two endpoints lose one path, not service
                weight = 1.0 if spof else 0.4
            penalty += share * weight + 0.02
        elif item.kind == "loss" and item.rate > 0.0:
            disruptive = True
            # Four-attempt ARQ pushes residual loss to ~rate**4; the
            # give-up path (redispatch, aborted hand-offs) is what
            # actually costs requests.  10x the raw rate is generous.
            penalty += 10.0 * item.rate + 0.01
    if not disruptive:
        return 1.0
    mpl_allowance = (16.0 * scenario.nodes) / max(1, scenario.requests)
    return max(0.0, 1.0 - penalty - slack - mpl_allowance)


class ChaosOracle:
    """Attachable invariant monitor for one simulation run."""

    def __init__(
        self, scenario: Scenario, config: Optional[OracleConfig] = None
    ):
        self.scenario = scenario
        self.config = config or OracleConfig()
        self.violations: List[Violation] = []
        self._seen: set = set()
        self._sim: Optional["Simulation"] = None
        self._last_now = 0.0
        self.samples_taken = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        """Bind to a driver and start the mid-run sampler process."""
        self._sim = sim
        if self.config.midrun_samples > 0:
            interval = self.scenario.horizon_s / self.config.midrun_samples
            sim.env.process(self._sampler(max(interval, 1e-9)),
                            name="chaos-oracle")

    def _sampler(self, interval: float):
        sim = self._sim
        assert sim is not None
        while sim._finished < sim._total:
            yield sim.env.timeout(interval)
            self.samples_taken += 1
            self._check_now(sim)

    def _record(self, check: str, detail: str) -> None:
        """Deduplicated: the sampler seeing the same breach 60 times is
        one finding, not 60."""
        key = (check, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(Violation(check, detail))

    # -- the catalog -------------------------------------------------------

    def _check_now(self, sim: "Simulation") -> None:
        """The cheap mid-run subset, on current driver state."""
        now = sim.env.now
        if now < self._last_now:
            self._record(
                "monotonic_time",
                f"simulated time went backwards: {now!r} after "
                f"{self._last_now!r}",
            )
        self._last_now = now
        if sim._finished > sim._next:
            self._record(
                "request_conservation",
                f"finished {sim._finished} requests but only {sim._next} "
                "were ever generated",
            )
        if sim._next > sim._total:
            self._record(
                "request_conservation",
                f"generated {sim._next} requests from a "
                f"{sim._total}-request trace",
            )
        for node in sim.cluster.nodes:
            cache = node.cache
            if cache.used_bytes > cache.capacity:
                self._record(
                    "cache_bound",
                    f"node {node.id} cache holds {cache.used_bytes} "
                    f"bytes in a {cache.capacity}-byte memory",
                )
            if node.open_connections < 0:
                self._record(
                    "connection_count",
                    f"node {node.id} reports "
                    f"{node.open_connections} open connections",
                )
        for problem in sim.policy.check_invariants():
            self._record("policy_invariant", problem)

    def finish(
        self,
        early_error: Optional[str] = None,
        baseline_times: Optional[Sequence[float]] = None,
    ) -> List[Violation]:
        """Run the post-run checks; returns all violations collected.

        ``baseline_times`` are the measured-window completion timestamps
        of the counterfactual no-perturbation run (same scenario minus
        workload items) that the metastable check scores against; the
        check is skipped when they are absent.
        """
        sim = self._sim
        if sim is None:
            raise RuntimeError("oracle was never attached to a simulation")
        self._check_now(sim)

        # Request conservation on the closed books.
        if early_error is not None:
            stranded = sim._next - sim._finished
            self._record(
                "request_conservation",
                f"run ended early ({early_error}): {stranded} of "
                f"{sim._next} generated requests stranded in flight",
            )
        elif sim._next != sim._completed + sim._failed:
            self._record(
                "request_conservation",
                f"generated {sim._next} != served {sim._completed} + "
                f"failed {sim._failed}",
            )
        result = sim._result
        if result is not None:
            for problem in result.verify():
                self._record("result_verify", problem)

        # Message books close for every kind, netfault layer or not.
        for kind, residual in sorted(self._reconcile(sim).items()):
            if residual != 0:
                self._record(
                    "message_books",
                    f"kind {kind!r}: sent - delivered - dropped - "
                    f"in_flight = {residual}",
                )

        # Availability floor.
        generated = sim._next
        if generated > 0:
            served = sim._completed / generated
            floor = availability_floor(self.scenario, self.config.slack)
            if floor >= 1.0:
                if sim._failed > 0:
                    self._record(
                        "availability_floor",
                        f"plan has no disruptive faults yet {sim._failed} "
                        "requests failed",
                    )
            elif served < floor:
                self._record(
                    "availability_floor",
                    f"served fraction {served:.4f} below the analytic "
                    f"floor {floor:.4f} for this fault plan",
                )
        if early_error is None:
            self._metastable(sim, baseline_times)
        if self.config.strict:
            shed = sum(n.shed for n in sim.cluster.nodes) + sim._shed_front
            if sim._failed > 0 or shed > 0:
                self._record(
                    "strict_service",
                    f"strict mode: {sim._failed} failed and {shed} shed "
                    "requests (expected zero)",
                )
        return list(self.violations)

    def _metastable(
        self,
        sim: "Simulation",
        baseline_times: Optional[Sequence[float]],
    ) -> None:
        """Post-perturbation goodput must re-converge (see module doc).

        Works on ``sim.completion_times`` (measured-window completion
        timestamps, recorded when the scenario carries workload items):
        a trace fraction ``f`` maps to completion index
        ``(f - warmup) / (1 - warmup) * M`` of each series, the rate
        over a fraction window is completions divided by the
        simulated-time span, and the perturbed run's tail rate is
        scored against the counterfactual baseline's rate over the
        *same* tail window — the only difference between the two runs
        is the perturbation, so any rate gap in the tail is damage that
        outlived its trigger.
        """
        if self.config.metastable_ratio <= 0.0:
            return
        times = sim.completion_times
        items = self.scenario.workload_items()
        if not items or len(times) < 32:
            return
        if baseline_times is None or len(baseline_times) < 32:
            return
        warmup = sim._warmup_count / max(1, sim._total)
        span = max(1e-9, 1.0 - warmup)

        def rate(series: Sequence[float], f_lo: float, f_hi: float
                 ) -> Optional[float]:
            m = len(series)
            i = max(0, min(m, int((f_lo - warmup) / span * m)))
            j = max(0, min(m, int((f_hi - warmup) / span * m)))
            if j - i < 8:
                return None  # too few completions to estimate a rate
            dt = series[j - 1] - series[i]
            return (j - i) / dt if dt > 0 else None

        # The closed loop drains at the end of the trace: once nothing
        # is left to spawn, the final ~MPL in-flight requests complete
        # with falling concurrency, and their rate measures the drain,
        # not the cluster's equilibrium.  End the tail window where the
        # drain begins (capped so tiny runs keep a measurable tail).
        mpl = sim.config.multiprogramming_per_node * sim.config.nodes
        m = len(times)
        f_tail_hi = 1.0 - min(mpl, m // 4) / m * span
        window = self.config.metastable_window
        ratio = self.config.metastable_ratio
        for item in items:
            if item.end is None or item.end >= f_tail_hi - 1e-9:
                continue  # no tail to measure re-convergence in
            f_tail_lo = max(item.end, f_tail_hi - window)
            post = rate(times, f_tail_lo, f_tail_hi)
            base = rate(baseline_times, f_tail_lo, f_tail_hi)
            if post is None or base is None:
                continue
            # Recovered = the tail reached ratio x of either yardstick.
            # The run's own pre-window rate exonerates bounded cache
            # re-warm (a run still mid-warmup can be back above its
            # pre-crowd rate yet trail the baseline, whose warming was
            # never set back); a metastable collapse sits 10-100x below
            # both.
            if post >= ratio * base:
                continue
            pre = rate(times, max(warmup, item.start - window), item.start)
            if pre is not None and post >= ratio * pre:
                continue
            self._record(
                "metastable_failure",
                f"goodput never re-converged after the {item.kind} "
                f"window [{item.start:g}, {item.end:g}): "
                f"{post:.1f} req/s in the pre-drain tail vs "
                f"{base:.1f} req/s in the no-perturbation baseline "
                f"(floor {ratio:.2f}x)",
            )

    @staticmethod
    def _reconcile(sim: "Simulation") -> Dict[str, int]:
        """Per-kind ``sent - delivered - dropped - in_flight`` residuals
        over the measured window, from the raw interconnect counters.

        Unlike :meth:`SimResult.message_reconciliation` this does not
        require a netfault layer: the interconnect maintains the counters
        on every path.  ``in_flight`` is a level, so the window delta is
        taken against the warmup-boundary snapshot.
        """
        net = sim.cluster.net
        base = sim._inflight_at_measure
        kinds = set(net.message_counts)
        kinds.update(net.delivered_counts, net.dropped_counts)
        kinds.update(net.in_flight_counts, base)
        return {
            kind: net.message_counts.get(kind, 0)
            - net.delivered_counts.get(kind, 0)
            - net.dropped_counts.get(kind, 0)
            - (net.in_flight_counts.get(kind, 0) - base.get(kind, 0))
            for kind in sorted(kinds)
        }
