"""The unified, serializable fault-scenario spec.

One :class:`Scenario` describes *everything* a chaos trial perturbs:

* node faults (crash/recover windows, fail-slow windows) — the
  :mod:`repro.faults` schedule grammar;
* fabric faults (message loss/duplication/jitter/delay rates, link
  outages, partitions) — the :mod:`repro.netfaults` schedule grammar;
* workload perturbation (a flash-crowd spike rewriting a window of the
  trace) — the :mod:`repro.experiments.flashcrowd` extension;

plus the run parameters needed to replay it exactly (trace, policy,
cluster size, seeds, retry budget).  The scenario serializes to a
canonical JSON document that **round-trips byte-identically**
(``Scenario.from_json(s.to_json()).to_json() == s.to_json()``), which is
what makes `repro chaos replay` and the shrinker's minimal reproducers
trustworthy.

Every fault is a :class:`PlanItem` — a *windowed* unit (a crash always
carries its recovery, an outage its repair) so that dropping an item
during shrinking can never leave an unmatched recover/heal event behind.
Items expand into the two existing schedule types via
:meth:`Scenario.fault_schedule` and :meth:`Scenario.netfault_config`;
the ``repro faults`` and ``repro netfaults`` CLIs accept a scenario file
through ``--spec`` and run the relevant half, so the two legacy
grammars and the chaos harness share one source of truth.

Validation raises :class:`ChaosSpecError` whose message always names the
offending field (``plan[3].node: ...``), so a hand-edited scenario file
fails loudly and precisely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from ..faults.schedule import FaultEvent, FaultSchedule
from ..netfaults.model import NetFaultConfig, NetFaultEvent, NetFaultSchedule

__all__ = [
    "ChaosSpecError",
    "PlanItem",
    "Scenario",
    "PLAN_KINDS",
    "NODE_KINDS",
    "FABRIC_KINDS",
    "RATE_KINDS",
    "LIVE_KINDS",
]

#: Windowed node-fault kinds (expand into repro.faults events).
NODE_KINDS = ("crash", "slow")
#: Windowed fabric-fault kinds (expand into repro.netfaults events).
FABRIC_KINDS = ("link_out", "partition")
#: Run-wide fabric perturbation rates (fields of NetFaultConfig).
RATE_KINDS = ("loss", "dup", "delay", "jitter")
#: Workload perturbation kinds (trace rewrites, substrate-neutral):
#: ``flash`` replaces a window with a hot file at a fixed share, ``ramp``
#: ramps the hot share linearly from zero to its peak across the window
#: (a flash *crowd* building, not a step), ``churn`` reshuffles which
#: files are popular inside the window (popularity churn).
WORKLOAD_KINDS = ("flash", "ramp", "churn")
#: Every recognized plan-item kind.
PLAN_KINDS = NODE_KINDS + FABRIC_KINDS + RATE_KINDS + WORKLOAD_KINDS

#: Kinds the live chaos bridge (:mod:`repro.live.faultproxy`) can execute
#: against a real cluster.  ``partition`` needs a switch fabric the live
#: star topology (every backend behind one front-end) does not have, and
#: ``dup`` needs message-level control below the TCP byte stream; both
#: are reported by :meth:`Scenario.live_unsupported`.
LIVE_KINDS = ("crash", "slow", "link_out", "loss", "delay", "jitter",
              "flash", "ramp", "churn")

#: Policies a scenario may name (the paper's four robustness subjects
#: plus the baselines the repo ships).
KNOWN_POLICIES = (
    "traditional",
    "round-robin",
    "lard",
    "lard-ng",
    "l2s",
    "consistent-hash",
)

KNOWN_TRACES = ("calgary", "clarknet", "nasa", "rutgers")


class ChaosSpecError(ValueError):
    """A scenario field failed validation; the message names the field."""

    def __init__(self, fieldname: str, problem: str):
        self.field = fieldname
        super().__init__(f"{fieldname}: {problem}")


def _require(cond: bool, fieldname: str, problem: str) -> None:
    if not cond:
        raise ChaosSpecError(fieldname, problem)


@dataclass(frozen=True)
class PlanItem:
    """One windowed fault (or run-wide rate) of a scenario's plan.

    Field use by ``kind``:

    ========== =======================================================
    kind       fields
    ========== =======================================================
    crash      node, start, end (recovery time; ``None`` = never)
    slow       node, start, end, factor (CPU speed multiplier)
    link_out   src, dst, start, end (repair time; ``None`` = never)
    partition  group, start, end (heal time; ``None`` = never)
    loss       rate (run-wide message-loss probability)
    dup        rate (run-wide duplication probability)
    delay      seconds (fixed extra switch delay per message)
    jitter     seconds (uniform extra delay bound per message)
    flash      start, end (fractions of the trace), share, rank
    ramp       start, end (fractions of the trace), share (peak), rank
    churn      start, end (fractions of the trace), share (intensity)
    ========== =======================================================

    Times are simulated seconds except for the workload kinds (``flash``
    / ``ramp`` / ``churn``), whose windows are fractions of the request
    stream (the rewrite happens at trace build time, before any
    simulated clock exists).
    """

    kind: str
    start: float = 0.0
    end: Optional[float] = None
    node: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    group: Tuple[int, ...] = ()
    factor: float = 1.0
    rate: float = 0.0
    seconds: float = 0.0
    share: float = 0.0
    rank: Optional[int] = None

    def validate(self, where: str, nodes: int, horizon_s: float) -> None:
        """Check this item; ``where`` prefixes every error (``plan[i]``)."""
        _require(self.kind in PLAN_KINDS, f"{where}.kind",
                 f"unknown kind {self.kind!r}; expected one of {PLAN_KINDS}")
        k = self.kind
        if k in NODE_KINDS:
            _require(self.node is not None, f"{where}.node",
                     f"{k} items need a target node")
            _require(0 <= int(self.node) < nodes, f"{where}.node",
                     f"node {self.node} outside the {nodes}-node cluster")
        if k in NODE_KINDS + FABRIC_KINDS:
            _require(self.start >= 0.0, f"{where}.start",
                     f"must be >= 0, got {self.start!r}")
            if self.end is not None:
                _require(self.end > self.start, f"{where}.end",
                         f"window end {self.end!r} must exceed start "
                         f"{self.start!r}")
        if k == "slow":
            _require(self.factor > 0.0, f"{where}.factor",
                     f"speed factor must be positive, got {self.factor!r}")
            _require(self.end is not None, f"{where}.end",
                     "slow windows must end (the factor is restored)")
        if k == "link_out":
            _require(self.src is not None and self.dst is not None,
                     f"{where}.src", "link_out items need src and dst")
            _require(self.src != self.dst, f"{where}.dst",
                     "link endpoints must differ")
            for name, v in (("src", self.src), ("dst", self.dst)):
                _require(0 <= int(v) < nodes, f"{where}.{name}",
                         f"node {v} outside the {nodes}-node cluster")
        if k == "partition":
            _require(len(self.group) >= 1, f"{where}.group",
                     "partition items need a non-empty node group")
            _require(len(self.group) < nodes, f"{where}.group",
                     f"group {list(self.group)} must leave at least one "
                     f"node on the majority side of a {nodes}-node cluster")
            _require(tuple(sorted(set(self.group))) == self.group,
                     f"{where}.group",
                     f"group must be sorted and duplicate-free, got "
                     f"{list(self.group)}")
            for n in self.group:
                _require(0 <= int(n) < nodes, f"{where}.group",
                         f"node {n} outside the {nodes}-node cluster")
        if k in ("loss", "dup"):
            _require(0.0 <= self.rate < 1.0, f"{where}.rate",
                     f"must be in [0, 1), got {self.rate!r}")
        if k in ("delay", "jitter"):
            _require(self.seconds >= 0.0, f"{where}.seconds",
                     f"must be >= 0, got {self.seconds!r}")
        if k in WORKLOAD_KINDS:
            _require(0.0 <= self.start < 1.0, f"{where}.start",
                     f"{k} window start is a trace fraction in [0, 1), "
                     f"got {self.start!r}")
            _require(self.end is not None and self.start < self.end <= 1.0,
                     f"{where}.end",
                     f"{k} window end must be a fraction in (start, 1], "
                     f"got {self.end!r}")
            _require(0.0 < self.share <= 1.0, f"{where}.share",
                     f"share must be in (0, 1], got {self.share!r}")
            _require(self.rank is None or self.rank >= 0, f"{where}.rank",
                     f"hot rank must be >= 0, got {self.rank!r}")

    # -- serialization ------------------------------------------------------

    _FIELDS = ("kind", "start", "end", "node", "src", "dst", "group",
               "factor", "rate", "seconds", "share", "rank")
    _DEFAULTS: ClassVar[Dict[str, Any]] = {
        "start": 0.0, "end": None, "node": None, "src": None, "dst": None,
        "group": (), "factor": 1.0, "rate": 0.0, "seconds": 0.0,
        "share": 0.0, "rank": None,
    }

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict: only fields that differ from their defaults."""
        out: Dict[str, Any] = {"kind": self.kind}
        for name in self._FIELDS[1:]:
            value = getattr(self, name)
            if name == "group":
                value = list(value)
                if not value:
                    continue
            elif value == self._DEFAULTS[name]:
                continue
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, obj: Any, where: str = "plan[?]") -> "PlanItem":
        _require(isinstance(obj, dict), where, "each plan item is an object")
        _require("kind" in obj, f"{where}.kind", "missing")
        unknown = sorted(set(obj) - set(cls._FIELDS))
        _require(not unknown, f"{where}.{unknown[0]}" if unknown else where,
                 "unknown field")
        kwargs: Dict[str, Any] = {}
        for name in cls._FIELDS:
            if name in obj:
                value = obj[name]
                if name == "group":
                    _require(isinstance(value, list), f"{where}.group",
                             "must be a list of node ids")
                    value = tuple(int(n) for n in value)
                kwargs[name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ChaosSpecError(where, str(exc)) from None

    def describe(self) -> str:
        k = self.kind
        if k == "crash":
            until = f"..{self.end:g}s" if self.end is not None else " (no reboot)"
            return f"crash({self.node}) @ {self.start:g}{until}"
        if k == "slow":
            return (f"slow({self.node}) x{self.factor:g} @ "
                    f"{self.start:g}..{self.end:g}s")
        if k == "link_out":
            until = f"..{self.end:g}s" if self.end is not None else " (no repair)"
            return f"link_out({self.src}-{self.dst}) @ {self.start:g}{until}"
        if k == "partition":
            until = f"..{self.end:g}s" if self.end is not None else " (no heal)"
            grp = "+".join(str(n) for n in self.group)
            return f"partition({grp}) @ {self.start:g}{until}"
        if k in ("loss", "dup"):
            return f"{k} {self.rate:g}"
        if k in ("delay", "jitter"):
            return f"{k} {self.seconds:g}s"
        if k == "ramp":
            return (f"ramp peak-share={self.share:g} @ "
                    f"[{self.start:g}, {self.end:g}) of trace")
        if k == "churn":
            return (f"churn intensity={self.share:g} @ "
                    f"[{self.start:g}, {self.end:g}) of trace")
        return (f"flash share={self.share:g} @ "
                f"[{self.start:g}, {self.end:g}) of trace")


@dataclass(frozen=True)
class Scenario:
    """One fully-specified chaos trial: run parameters plus a fault plan."""

    #: Human-readable handle (``chaos-s42-t007``); file names derive from it.
    name: str
    #: Master seed: workload synthesis, fabric RNG, and replay identity.
    seed: int
    #: Trace preset driving the run.
    trace: str = "calgary"
    #: Synthetic request count (before flash rewriting).
    requests: int = 2000
    #: Policy under test.
    policy: str = "l2s"
    #: Cluster size.
    nodes: int = 8
    #: Per-node memory, MB.
    cache_mb: int = 32
    #: Estimated run duration (s); fault windows were sampled inside it
    #: and the availability-floor oracle normalizes by it.
    horizon_s: float = 1.0
    #: Client retry budget for aborted requests (0 = aborts are terminal).
    retries: int = 4
    #: lard-ng only: dispatcher re-election delay after a crash.
    failover_s: Optional[float] = None
    #: l2s only: staleness bound on remote load-view entries.
    view_max_age_s: Optional[float] = None
    #: Front-door admission: static concurrency cap wired into an
    #: :class:`~repro.overload.OverloadControl` on *both* substrates.
    #: ``None`` (with ``deadline_s`` also unset) = no overload control.
    admission_limit: Optional[int] = None
    #: Client deadline fed to admission's deadline-aware drop and to the
    #: goodput scoring (a completion past the deadline is not goodput).
    deadline_s: Optional[float] = None
    #: The fault plan.
    plan: Tuple[PlanItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "plan", tuple(self.plan))
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        _require(bool(self.name), "name", "must be non-empty")
        _require(self.trace in KNOWN_TRACES, "trace",
                 f"unknown trace {self.trace!r}; expected one of "
                 f"{KNOWN_TRACES}")
        _require(self.policy in KNOWN_POLICIES, "policy",
                 f"unknown policy {self.policy!r}; expected one of "
                 f"{KNOWN_POLICIES}")
        _require(self.requests >= 100, "requests",
                 f"must be >= 100, got {self.requests!r}")
        _require(self.nodes >= 1, "nodes", f"must be >= 1, got {self.nodes!r}")
        _require(self.cache_mb >= 1, "cache_mb",
                 f"must be >= 1, got {self.cache_mb!r}")
        _require(self.horizon_s > 0.0, "horizon_s",
                 f"must be positive, got {self.horizon_s!r}")
        _require(self.retries >= 0, "retries",
                 f"must be >= 0, got {self.retries!r}")
        _require(self.failover_s is None or self.failover_s >= 0.0,
                 "failover_s", f"must be >= 0, got {self.failover_s!r}")
        _require(self.view_max_age_s is None or self.view_max_age_s > 0.0,
                 "view_max_age_s",
                 f"must be positive, got {self.view_max_age_s!r}")
        _require(self.admission_limit is None or self.admission_limit >= 1,
                 "admission_limit",
                 f"must be >= 1, got {self.admission_limit!r}")
        _require(self.deadline_s is None or self.deadline_s > 0.0,
                 "deadline_s",
                 f"must be positive, got {self.deadline_s!r}")
        for i, item in enumerate(self.plan):
            item.validate(f"plan[{i}]", self.nodes, self.horizon_s)

    # -- derived schedules --------------------------------------------------

    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The node-fault half of the plan as a legacy FaultSchedule."""
        events: List[FaultEvent] = []
        for item in self.plan:
            if item.kind == "crash":
                events.append(FaultEvent("crash", item.node, at=item.start))
                if item.end is not None:
                    events.append(
                        FaultEvent("recover", item.node, at=item.end)
                    )
            elif item.kind == "slow":
                events.append(
                    FaultEvent("slow", item.node, at=item.start,
                               factor=item.factor)
                )
                events.append(
                    FaultEvent("slow", item.node, at=item.end, factor=1.0)
                )
        return FaultSchedule(events) if events else None

    def netfault_config(self) -> Optional[NetFaultConfig]:
        """The fabric half of the plan as a legacy NetFaultConfig."""
        loss = dup = 0.0
        delay = jitter = 0.0
        events: List[NetFaultEvent] = []
        for item in self.plan:
            if item.kind == "loss":
                loss = item.rate
            elif item.kind == "dup":
                dup = item.rate
            elif item.kind == "delay":
                delay = item.seconds
            elif item.kind == "jitter":
                jitter = item.seconds
            elif item.kind == "link_out":
                events.append(
                    NetFaultEvent("link_down", item.start,
                                  src=item.src, dst=item.dst)
                )
                if item.end is not None:
                    events.append(
                        NetFaultEvent("link_up", item.end,
                                      src=item.src, dst=item.dst)
                    )
            elif item.kind == "partition":
                events.append(
                    NetFaultEvent("partition", item.start, group=item.group)
                )
                if item.end is not None:
                    events.append(NetFaultEvent("heal", item.end))
        if not events and not (
            loss > 0.0 or dup > 0.0 or delay > 0.0 or jitter > 0.0
        ):
            return None
        return NetFaultConfig(
            loss_rate=loss,
            dup_rate=dup,
            extra_delay_s=delay,
            jitter_s=jitter,
            schedule=NetFaultSchedule(tuple(events)) if events else None,
            seed=self.seed,
        )

    # -- live-cluster expansion ---------------------------------------------

    def live_unsupported(self) -> List[str]:
        """Reasons this scenario cannot run on the live cluster.

        Empty list means every plan item and the policy itself have a
        live equivalent.  The live bridge refuses to run (rather than
        silently dropping faults) when this is non-empty, mirroring how
        :class:`repro.live.engine.PolicyEngine` rejects lard-ng.
        """
        problems: List[str] = []
        if self.policy == "lard-ng":
            problems.append(
                "policy lard-ng: async_decide election needs the DES "
                "generator substrate (LiveUnsupported in repro.live)"
            )
        for i, item in enumerate(self.plan):
            if item.kind not in LIVE_KINDS:
                why = {
                    "partition": "live topology is a star through the "
                                 "front-end; there is no fabric to split",
                    "dup": "TCP byte streams cannot duplicate discrete "
                           "messages",
                }[item.kind]
                problems.append(f"plan[{i}] {item.describe()}: {why}")
        return problems

    def live_schedule(self) -> List[Tuple[float, str, Dict[str, Any]]]:
        """The node/link half of the plan as live injector actions.

        Returns ``(frac, action, params)`` triples sorted by ``frac``,
        where ``frac`` is the item time as a fraction of ``horizon_s``.
        The live injector fires an action when the *loadtest progress
        fraction* (requests finished / requests issued overall) crosses
        ``frac`` — structural alignment with the sim (the same fraction
        of the workload is perturbed) instead of a fragile wall-clock
        mapping between simulated and real seconds.

        Actions: ``kill``/``respawn`` (crash window via SIGKILL + fresh
        incarnation), ``suspend``/``resume`` (slow window via
        SIGSTOP/SIGCONT — the live analog of a fail-slow node),
        ``link_down``/``link_up`` (the *dst* node's chaos proxy refuses
        connections; ``src`` is ignored because every live path crosses
        the front-end star).
        """
        horizon = self.horizon_s

        def frac(t: float) -> float:
            return min(1.0, max(0.0, t / horizon))

        actions: List[Tuple[float, str, Dict[str, Any]]] = []
        for item in self.plan:
            if item.kind == "crash":
                actions.append((frac(item.start), "kill",
                                {"node": int(item.node)}))
                if item.end is not None:
                    actions.append((frac(item.end), "respawn",
                                    {"node": int(item.node)}))
            elif item.kind == "slow":
                actions.append((frac(item.start), "suspend",
                                {"node": int(item.node)}))
                actions.append((frac(item.end), "resume",
                                {"node": int(item.node)}))
            elif item.kind == "link_out":
                actions.append((frac(item.start), "link_down",
                                {"node": int(item.dst)}))
                if item.end is not None:
                    actions.append((frac(item.end), "link_up",
                                    {"node": int(item.dst)}))
        actions.sort(key=lambda a: a[0])
        return actions

    def live_rates(self) -> Dict[str, float]:
        """Run-wide fabric rates for the live chaos proxies.

        ``loss`` is applied per proxied connection (the connection is
        severed mid-transfer), ``delay_s``/``jitter_s`` stretch each
        proxied byte stream — the connection-level analog of the sim's
        per-message perturbation.
        """
        rates = {"loss": 0.0, "delay_s": 0.0, "jitter_s": 0.0}
        for item in self.plan:
            if item.kind == "loss":
                rates["loss"] = item.rate
            elif item.kind == "delay":
                rates["delay_s"] = item.seconds
            elif item.kind == "jitter":
                rates["jitter_s"] = item.seconds
        return rates

    def flash_item(self) -> Optional[PlanItem]:
        """The workload-spike item, if the plan carries one."""
        for item in self.plan:
            if item.kind == "flash":
                return item
        return None

    def workload_items(self) -> Tuple[PlanItem, ...]:
        """Every workload-perturbation item (flash/ramp/churn), in plan
        order — the trace is rewritten by each in turn."""
        return tuple(i for i in self.plan if i.kind in WORKLOAD_KINDS)

    def counts(self) -> Dict[str, int]:
        """Plan-item count per kind (reporting)."""
        out: Dict[str, int] = {}
        for item in self.plan:
            out[item.kind] = out.get(item.kind, 0) + 1
        return out

    def event_count(self) -> int:
        """Number of schedule *events* the plan expands to (a crash with
        recovery is two events, matching the legacy grammars)."""
        n = 0
        for item in self.plan:
            if item.kind in ("crash", "link_out", "partition"):
                n += 1 if item.end is None else 2
            elif item.kind == "slow":
                n += 2
            else:
                n += 1
        return n

    def describe(self) -> str:
        plan = "; ".join(item.describe() for item in self.plan) or "(clean)"
        return (
            f"{self.name}: {self.policy} x {self.nodes} nodes, "
            f"{self.trace}/{self.requests} reqs, seed {self.seed} — {plan}"
        )

    def replay_cli(self, path: str) -> str:
        """The exact CLI line that replays this scenario from ``path``."""
        return f"repro chaos replay {path}"

    def with_plan(self, plan: Tuple[PlanItem, ...]) -> "Scenario":
        return replace(self, plan=tuple(plan))

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "trace": self.trace,
            "requests": self.requests,
            "policy": self.policy,
            "nodes": self.nodes,
            "cache_mb": self.cache_mb,
            "horizon_s": self.horizon_s,
            "retries": self.retries,
            "plan": [item.to_dict() for item in self.plan],
        }
        if self.failover_s is not None:
            out["failover_s"] = self.failover_s
        if self.view_max_age_s is not None:
            out["view_max_age_s"] = self.view_max_age_s
        if self.admission_limit is not None:
            out["admission_limit"] = self.admission_limit
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        return out

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing newline.

        The canonical form is what round-trips byte-identically and what
        replay reports and shrinker outputs are diffed against.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    _SCALARS = ("name", "seed", "trace", "requests", "policy", "nodes",
                "cache_mb", "horizon_s", "retries", "failover_s",
                "view_max_age_s", "admission_limit", "deadline_s")

    @classmethod
    def from_dict(cls, obj: Any) -> "Scenario":
        _require(isinstance(obj, dict), "scenario",
                 "the document root must be an object")
        unknown = sorted(set(obj) - set(cls._SCALARS) - {"plan"})
        _require(not unknown, unknown[0] if unknown else "scenario",
                 "unknown field")
        for required in ("name", "seed"):
            _require(required in obj, required, "missing")
        kwargs: Dict[str, Any] = {
            k: obj[k] for k in cls._SCALARS if k in obj
        }
        raw_plan = obj.get("plan", [])
        _require(isinstance(raw_plan, list), "plan", "must be a list")
        kwargs["plan"] = tuple(
            PlanItem.from_dict(item, where=f"plan[{i}]")
            for i, item in enumerate(raw_plan)
        )
        try:
            return cls(**kwargs)
        except ChaosSpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise ChaosSpecError("scenario", str(exc)) from None

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosSpecError("scenario", f"invalid JSON: {exc}") from None
        return cls.from_dict(obj)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
