"""Delta-debugging shrinker: minimal reproducers from failing scenarios.

Given a scenario whose oracle run fails, :func:`shrink_scenario` finds a
smaller scenario that *still fails the same way* in three deterministic
passes:

1. **ddmin over plan items** — the classic Zeller/Hildebrandt algorithm
   on the fault plan: try dropping complements of ever-finer chunks,
   keeping any reduced plan that still fails.  This removes whole fault
   events.
2. **window narrowing** — for every surviving windowed item, repeatedly
   halve the window toward its start while the failure persists.
3. **magnitude shrinking** — halve rates/seconds, pull slow factors
   toward 1.0, halve flash shares; keep each move only if the failure
   persists.

Every candidate evaluation is a full deterministic re-run (same seed,
same trace), so the shrink itself is reproducible: the same failing
input always minimizes to the byte-identical scenario.  Evaluations are
memoized on the canonical JSON of the candidate, and the total number of
*fresh* runs is budgeted (``max_runs``) so a shrink can't run away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from .oracle import OracleConfig
from .spec import PlanItem, Scenario

__all__ = ["ShrinkResult", "shrink_scenario", "still_fails", "render_shrink"]

#: A predicate deciding "does this candidate still reproduce the
#: failure?".  Injectable for tests; the default re-runs the oracles.
Predicate = Callable[[Scenario], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of a shrink: the minimal scenario plus bookkeeping."""

    #: The minimized scenario (still failing).
    scenario: Scenario
    #: The input it was shrunk from.
    original: Scenario
    #: Fresh predicate evaluations spent (cache hits excluded).
    runs: int
    #: True when the run budget expired before the passes finished; the
    #: result is still a valid (if possibly non-minimal) reproducer.
    budget_exhausted: bool

    @property
    def events_before(self) -> int:
        return self.original.event_count()

    @property
    def events_after(self) -> int:
        return self.scenario.event_count()


def still_fails(
    scenario: Scenario, oracle_config: Optional[OracleConfig] = None
) -> bool:
    """The default predicate: run the scenario, True iff any oracle
    fires."""
    from .runner import run_scenario  # local: avoid import cycle

    return bool(run_scenario(scenario, oracle_config).violations)


class _Budget:
    """Memoized, counted predicate evaluation."""

    def __init__(self, predicate: Predicate, max_runs: int):
        self._predicate = predicate
        self.max_runs = max_runs
        self.runs = 0
        self.exhausted = False
        self._cache: Dict[str, bool] = {}

    def check(self, scenario: Scenario) -> bool:
        key = scenario.to_json()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if self.runs >= self.max_runs:
            # Out of budget: treat unknown candidates as "does not
            # reproduce" so no pass accepts an unverified shrink.
            self.exhausted = True
            return False
        self.runs += 1
        verdict = self._predicate(scenario)
        self._cache[key] = verdict
        return verdict


def _ddmin_items(
    scenario: Scenario, budget: _Budget
) -> Tuple[PlanItem, ...]:
    """Minimize the plan-item list with ddmin."""
    items: List[PlanItem] = list(scenario.plan)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and budget.check(scenario.with_plan(candidate)):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    # A single remaining item might itself be droppable (the failure may
    # not need any fault at all, e.g. a broken oracle or base-run bug).
    if len(items) == 1 and budget.check(scenario.with_plan([])):
        items = []
    return tuple(items)


def _narrow_windows(
    scenario: Scenario, budget: _Budget
) -> Tuple[PlanItem, ...]:
    """Halve each surviving fault window toward its start while the
    failure persists."""
    items = list(scenario.plan)
    for idx, item in enumerate(items):
        if item.end is None or item.kind == "flash":
            continue
        for _ in range(8):  # halving 8x shrinks a window 256-fold
            span = item.end - item.start
            if span <= 1e-6:
                break
            narrowed = replace(item, end=round(item.start + span / 2.0, 6))
            candidate = items[:idx] + [narrowed] + items[idx + 1:]
            if not budget.check(scenario.with_plan(candidate)):
                break
            item = narrowed
            items[idx] = narrowed
    return tuple(items)


def _shrink_one_magnitude(item: PlanItem) -> Optional[PlanItem]:
    """The next smaller-magnitude version of an item, or None when the
    item is already minimal."""
    if item.kind in ("loss", "dup") and item.rate > 1e-5:
        return replace(item, rate=round(item.rate / 2.0, 6))
    if item.kind in ("delay", "jitter") and item.seconds > 1e-7:
        return replace(item, seconds=round(item.seconds / 2.0, 8))
    if item.kind == "slow" and item.factor < 0.95:
        # Pull the CPU factor toward 1.0 (no slowdown).
        return replace(
            item, factor=round(item.factor + (1.0 - item.factor) / 2.0, 3)
        )
    if item.kind == "flash" and item.share > 0.05:
        return replace(item, share=round(item.share / 2.0, 3))
    return None


def _shrink_magnitudes(
    scenario: Scenario, budget: _Budget
) -> Tuple[PlanItem, ...]:
    items = list(scenario.plan)
    for idx in range(len(items)):
        while True:
            smaller = _shrink_one_magnitude(items[idx])
            if smaller is None:
                break
            candidate = items[:idx] + [smaller] + items[idx + 1:]
            if not budget.check(scenario.with_plan(candidate)):
                break
            items[idx] = smaller
    return tuple(items)


def shrink_scenario(
    scenario: Scenario,
    oracle_config: Optional[OracleConfig] = None,
    max_runs: int = 200,
    predicate: Optional[Predicate] = None,
) -> ShrinkResult:
    """Minimize a failing scenario to a smaller reproducer.

    Raises ``ValueError`` if the input scenario does not fail its own
    oracles — shrinking a passing scenario would "minimize" to noise.
    """
    check = predicate
    if check is None:
        def check(s: Scenario) -> bool:
            return still_fails(s, oracle_config)
    budget = _Budget(check, max_runs)
    if not budget.check(scenario):
        raise ValueError(
            f"scenario {scenario.name!r} does not fail its oracles; "
            "nothing to shrink"
        )
    current = scenario
    for shrink_pass in (_ddmin_items, _narrow_windows, _shrink_magnitudes):
        current = current.with_plan(shrink_pass(current, budget))
    # Every accepted move was predicate-verified, so `current` fails.
    return ShrinkResult(
        scenario=current,
        original=scenario,
        runs=budget.runs,
        budget_exhausted=budget.exhausted,
    )


def render_shrink(result: ShrinkResult, out_path: str) -> str:
    """Deterministic human-readable shrink summary."""
    lines = [
        f"shrunk {result.original.name}: "
        f"{result.events_before} -> {result.events_after} fault events "
        f"in {result.runs} runs"
        + (" (budget exhausted)" if result.budget_exhausted else ""),
        f"minimal reproducer written to {out_path}",
        f"replay: {result.scenario.replay_cli(out_path)}",
        "plan:",
    ]
    for item in result.scenario.plan:
        lines.append(f"  - {item.describe()}")
    if not result.scenario.plan:
        lines.append("  (empty — the failure needs no fault plan at all)")
    return "\n".join(lines)
