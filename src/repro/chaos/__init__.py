"""repro.chaos — randomized fault-scenario fuzzing for the simulator.

The curated A2 (node crashes) and A3 (unreliable fabric) experiments
check hand-picked scenarios; this package *generates* them.  A seeded
:class:`~repro.chaos.spec.Scenario` combines node faults, fabric faults,
and workload spikes into one JSON document that round-trips
byte-identically; :mod:`~repro.chaos.oracle` proves cluster-wide
invariants on every run (request conservation, message reconciliation,
availability floors, cache/server-set bounds, monotonic time); and
:mod:`~repro.chaos.shrink` delta-debugs any failing scenario down to a
minimal reproducer.  Drive it with ``repro chaos`` (see docs/CHAOS.md).
"""

from .generator import ScenarioGenerator, generate_scenario
from .oracle import ChaosOracle, OracleConfig, Violation, availability_floor
from .runner import ChaosOutcome, render_report, run_scenario
from .shrink import ShrinkResult, shrink_scenario
from .spec import ChaosSpecError, PlanItem, Scenario

__all__ = [
    "ChaosOracle",
    "ChaosOutcome",
    "ChaosSpecError",
    "OracleConfig",
    "PlanItem",
    "Scenario",
    "ScenarioGenerator",
    "ShrinkResult",
    "Violation",
    "availability_floor",
    "generate_scenario",
    "render_report",
    "run_scenario",
    "shrink_scenario",
]
