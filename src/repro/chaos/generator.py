"""Seeded scenario generation: sampling combined fault plans.

Every trial derives its own ``random.Random`` from ``(sweep seed,
trial index)`` — the derivation mirrors
:meth:`repro.faults.schedule.FaultSchedule.stochastic` — so trial *k*
of seed *S* is the same scenario forever, independent of how many
trials run or in what order.  The generated plan mixes:

* crash windows (always with a recovery inside the horizon — permanent
  deaths are the curated A2 experiment's job, and bounded windows keep
  the shrinker's narrowing moves meaningful);
* fail-slow windows (CPU factor in [0.2, 0.8], later restored);
* link outages and partitions (always healed — an unhealed partition
  can strand requests forever, which the conservation oracle would
  report as a true positive that no shrink can localize);
* at most one each of the run-wide fabric rates (loss, dup, delay,
  jitter) and of the workload perturbations (a flash-crowd spike, a
  flash *ramp* that builds linearly to its peak, a popularity-churn
  window that rotates the hot set).

The run horizon is *estimated analytically* from the paper's model
bound (:func:`repro.sim.runner.model_bound_for_trace`) rather than by a
calibration run: deterministic, costs microseconds, and only needs to
be the right order of magnitude — fault windows are sampled inside the
first ~70% of the estimate so they land inside the real run even when
the estimate is generous.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..model import MB
from ..sim.runner import model_bound_for_trace
from .spec import PlanItem, Scenario

__all__ = ["ScenarioGenerator", "generate_scenario", "DEFAULT_POLICIES"]

#: The paper's four robustness subjects, cycled across trials so every
#: sweep of >= 4 trials covers all of them.
DEFAULT_POLICIES: Tuple[str, ...] = ("traditional", "lard", "lard-ng", "l2s")

#: Fraction of the achievable model bound a faulted simulation run is
#: assumed to reach when estimating its duration.  Deliberately low:
#: underestimating throughput overestimates the horizon, which only
#: spreads fault windows a little thinner.
_ASSUMED_BOUND_FRACTION = 0.35


def estimate_horizon_s(trace: str, requests: int, nodes: int,
                       cache_mb: int) -> float:
    """Deterministic run-duration estimate for window sampling."""
    bound = model_bound_for_trace(
        trace, nodes=nodes, cache_bytes=cache_mb * MB
    )
    rps = max(1.0, bound.throughput * _ASSUMED_BOUND_FRACTION)
    return max(1e-3, requests / rps)


class ScenarioGenerator:
    """Samples :class:`Scenario` specs from a sweep seed."""

    def __init__(
        self,
        seed: int,
        policies: Sequence[str] = DEFAULT_POLICIES,
        trace: str = "calgary",
        requests: int = 1200,
        nodes_choices: Sequence[int] = (4, 6, 8),
        cache_mb: int = 16,
        retries: int = 4,
        max_items: int = 4,
        kinds: Optional[Sequence[str]] = None,
    ):
        if not policies:
            raise ValueError("need at least one policy")
        self.seed = seed
        self.policies = tuple(policies)
        self.trace = trace
        self.requests = requests
        self.nodes_choices = tuple(nodes_choices)
        self.cache_mb = cache_mb
        self.retries = retries
        self.max_items = max_items
        #: Restrict sampling to these plan-item kinds (``None`` = the
        #: full pool).  ``repro chaos --kinds ramp,churn`` uses this to
        #: soak the overload machinery specifically.
        if kinds is not None:
            kinds = tuple(kinds)
            unknown = [k for k in kinds if k not in _KIND_POOL]
            if unknown:
                raise ValueError(f"unknown plan kinds: {', '.join(unknown)}")
            if not kinds:
                raise ValueError("kinds filter must not be empty")
        self.kinds = kinds

    def generate(self, trial: int) -> Scenario:
        """The scenario for one trial index — a pure function of
        ``(self.seed, trial)`` and the generator's parameters."""
        rng = random.Random((self.seed << 24) ^ (trial * 0x9E3779B1))
        policy = self.policies[trial % len(self.policies)]
        nodes = rng.choice(list(self.nodes_choices))
        horizon = estimate_horizon_s(
            self.trace, self.requests, nodes, self.cache_mb
        )
        plan = _sample_plan(
            rng, policy, nodes, horizon, self.max_items, self.kinds
        )
        return Scenario(
            name=f"chaos-s{self.seed}-t{trial:04d}",
            seed=(self.seed << 16) ^ trial,
            trace=self.trace,
            requests=self.requests,
            policy=policy,
            nodes=nodes,
            cache_mb=self.cache_mb,
            horizon_s=round(horizon, 6),
            retries=self.retries,
            failover_s=(
                round(horizon * 0.02, 6) if policy == "lard-ng" else None
            ),
            view_max_age_s=(
                round(horizon * 0.25, 6) if policy == "l2s" else None
            ),
            plan=tuple(plan),
        )


def _window(rng: random.Random, horizon: float) -> Tuple[float, float]:
    """A fault window inside the first ~70% of the (estimated) run."""
    start = rng.uniform(0.08, 0.45) * horizon
    length = rng.uniform(0.05, 0.25) * horizon
    return round(start, 6), round(start + length, 6)


#: The full sampling pool; "crash" twice so crashes stay the most
#: common item even as the pool grows.
_KIND_POOL = ("crash", "crash", "slow", "link_out", "partition",
              "loss", "dup", "jitter", "delay", "flash", "ramp", "churn")

#: Kinds that appear at most once per plan (see ``_sample_plan``).
_ONCE_ONLY = frozenset(
    {"loss", "dup", "jitter", "delay", "flash", "ramp", "churn"}
)


def _sample_plan(
    rng: random.Random,
    policy: str,
    nodes: int,
    horizon: float,
    max_items: int,
    kinds: Optional[Sequence[str]] = None,
) -> List[PlanItem]:
    """Sample a combined fault plan.

    Windowed faults may repeat (several crashes, overlapping slow
    windows); the run-wide rates and the workload perturbations (flash,
    ramp, churn) appear at most once each — two ``loss`` items would
    just shadow one another in :meth:`Scenario.netfault_config`, and
    stacked trace rewrites bury each other, leaving dead plan weight
    the shrinker would have to discover by brute force.
    """
    pool = list(_KIND_POOL) if kinds is None else [
        k for k in _KIND_POOL if k in kinds
    ]
    count = rng.randint(1, max_items)
    used_once = set()
    plan: List[PlanItem] = []
    for _ in range(count):
        kind = rng.choice(pool)
        if kind in _ONCE_ONLY:
            if kind in used_once:
                continue
            used_once.add(kind)
        plan.append(_sample_item(rng, kind, policy, nodes, horizon))
    if not plan:
        plan.append(_sample_item(rng, pool[0], policy, nodes, horizon))
    return plan


def _sample_item(
    rng: random.Random,
    kind: str,
    policy: str,
    nodes: int,
    horizon: float,
) -> PlanItem:
    if kind == "crash":
        start, end = _window(rng, horizon)
        return PlanItem(
            kind="crash", node=rng.randrange(nodes), start=start, end=end
        )
    if kind == "slow":
        start, end = _window(rng, horizon)
        return PlanItem(
            kind="slow",
            node=rng.randrange(nodes),
            start=start,
            end=end,
            factor=round(rng.uniform(0.2, 0.8), 3),
        )
    if kind == "link_out":
        start, end = _window(rng, horizon)
        a = rng.randrange(nodes)
        b = rng.randrange(nodes - 1)
        if b >= a:
            b += 1
        return PlanItem(kind="link_out", src=a, dst=b, start=start, end=end)
    if kind == "partition":
        start, end = _window(rng, horizon)
        size = rng.randint(1, max(1, nodes // 2))
        group = tuple(sorted(rng.sample(range(nodes), size)))
        return PlanItem(kind="partition", group=group, start=start, end=end)
    if kind == "loss":
        return PlanItem(kind="loss", rate=round(rng.uniform(0.001, 0.03), 5))
    if kind == "dup":
        return PlanItem(kind="dup", rate=round(rng.uniform(0.001, 0.02), 5))
    if kind == "jitter":
        return PlanItem(
            kind="jitter", seconds=round(rng.uniform(5e-6, 2e-4), 8)
        )
    if kind == "delay":
        return PlanItem(
            kind="delay", seconds=round(rng.uniform(5e-6, 1e-4), 8)
        )
    if kind == "flash":
        start = round(rng.uniform(0.2, 0.5), 3)
        length = round(rng.uniform(0.1, 0.3), 3)
        return PlanItem(
            kind="flash",
            start=start,
            end=round(start + length, 3),
            share=round(rng.uniform(0.3, 0.7), 3),
        )
    if kind == "ramp":
        # Leave room after the window so the metastable oracle can
        # measure post-trigger re-convergence.
        start = round(rng.uniform(0.2, 0.45), 3)
        length = round(rng.uniform(0.1, 0.3), 3)
        return PlanItem(
            kind="ramp",
            start=start,
            end=round(start + length, 3),
            share=round(rng.uniform(0.3, 0.7), 3),
        )
    if kind == "churn":
        start = round(rng.uniform(0.2, 0.45), 3)
        length = round(rng.uniform(0.15, 0.35), 3)
        return PlanItem(
            kind="churn",
            start=start,
            end=round(start + length, 3),
            share=round(rng.uniform(0.3, 0.8), 3),
        )
    raise ValueError(f"unknown sample kind {kind!r}")


def generate_scenario(
    trial: int,
    seed: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    trace: str = "calgary",
    requests: int = 1200,
    nodes_choices: Sequence[int] = (4, 6, 8),
    cache_mb: int = 16,
    retries: int = 4,
    max_items: int = 4,
    kinds: Optional[Sequence[str]] = None,
) -> Scenario:
    """One-call form of :meth:`ScenarioGenerator.generate`."""
    return ScenarioGenerator(
        seed,
        policies=policies,
        trace=trace,
        requests=requests,
        nodes_choices=nodes_choices,
        cache_mb=cache_mb,
        retries=retries,
        max_items=max_items,
        kinds=kinds,
    ).generate(trial)
