"""Message reliability on top of the unreliable fabric.

A stop-and-wait ARQ per message: the receiver acknowledges every copy it
sees (the ack is itself a lossy control message), the sender retransmits
on an ack timeout with capped exponential backoff, and per-send sequence
numbers give at-most-once effect semantics — a retransmission arriving
after the original is counted as a dedup and its effect is suppressed.

Two forms mirror the interconnect's two delivery paths:

* :meth:`ReliableMessenger.request_gen` — a generator the caller drives
  inline (``yield from``); the caller resumes once a transmission has
  been acknowledged, or after retries exhaust.  Used for hand-offs, the
  LARD-NG query/reply pair, and DFS fetch legs.
* :meth:`ReliableMessenger.send_cb` — fire-and-forget callback form for
  control messages whose sender never blocks (LARD completion notices,
  L2S server-set updates).  The ``deliver`` effect fires at the first
  delivery only.

Which message kinds opt in is the policy's choice, expressed through
``NetFaultConfig.reliable_kinds``; everything else keeps the bare
best-effort send.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, TYPE_CHECKING

from .model import NetFaultConfig, RetrySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.network import Interconnect

__all__ = ["ReliableMessenger"]


class ReliableMessenger:
    """Ack/retry/dedup protocol engine bound to one interconnect."""

    def __init__(self, net: "Interconnect", config: NetFaultConfig):
        self.net = net
        self.env = net.env
        self.config = config
        self._reliable = frozenset(config.reliable_kinds)
        self._seq = 0
        #: Retransmissions per kind.
        self.retries: Dict[str, int] = {}
        #: Acks sent per (data-message) kind.
        self.acks: Dict[str, int] = {}
        #: Duplicate deliveries suppressed per kind.
        self.dedups: Dict[str, int] = {}
        #: Sends abandoned after exhausting retries, per kind.
        self.failures: Dict[str, int] = {}
        #: Hand-offs re-dispatched by the lifecycle after such a failure.
        self.redispatches = 0

    def covers(self, kind: str) -> bool:
        return kind in self._reliable

    def spec_for(self, kind: str) -> RetrySpec:
        return self.config.spec_for(kind)

    def _bump(self, counter: Dict[str, int], kind: str) -> None:
        counter[kind] = counter.get(kind, 0) + 1

    def reset_accounting(self) -> None:
        self.retries.clear()
        self.acks.clear()
        self.dedups.clear()
        self.failures.clear()
        self.redispatches = 0

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "retries": dict(self.retries),
            "acks": dict(self.acks),
            "dedups": dict(self.dedups),
            "failures": dict(self.failures),
        }

    # -- inline (generator) form -------------------------------------------

    def request_gen(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str,
        ni_time_s: Optional[float] = None,
    ) -> Generator:
        """Send reliably; the caller resumes at ack (True) or give-up (False).

        Stop-and-wait: each attempt transmits the payload, then — on
        delivery — waits for the receiver's ack to cross back.  An
        undelivered attempt (or a lost ack) charges the remainder of the
        kind's timeout before the backoff pause and the retransmission.
        """
        net = self.net
        env = self.env
        if src == dst:
            yield from net.send_message(src, dst, size_kb, kind, ni_time_s)
            return True
        spec = self.spec_for(kind)
        cfg = net.config
        delivered_once = False
        for attempt in range(spec.max_retries + 1):
            started = env.now
            if attempt:
                self._bump(self.retries, kind)
            got = yield from net.send_message(src, dst, size_kb, kind, ni_time_s)
            if got:
                if delivered_once:
                    self._bump(self.dedups, kind)
                delivered_once = True
                # The receiver acks every copy it sees; the ack itself
                # can be lost, forcing a (deduped) retransmission.
                self._bump(self.acks, kind)
                acked = yield from net.send_message(
                    dst,
                    src,
                    cfg.control_kb,
                    kind + "_ack",
                    ni_time_s=cfg.ni_control_time(),
                )
                if acked:
                    return True
            remaining = spec.timeout_s - (env.now - started)
            if remaining > 0:
                yield env.timeout(remaining)
            if attempt < spec.max_retries:
                backoff = spec.backoff(attempt + 1)
                if backoff > 0:
                    yield env.timeout(backoff)
        self._bump(self.failures, kind)
        return False

    # -- fire-and-forget (callback) form -----------------------------------

    def send_cb(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str,
        deliver: Optional[Callable[[], None]] = None,
        failed: Optional[Callable[[], None]] = None,
        ni_time_s: Optional[float] = None,
    ) -> None:
        """Reliable fire-and-forget send.

        ``deliver()`` fires at the *first* delivery (at-most-once);
        ``failed()`` fires if retries exhaust without any delivery.
        """
        if src == dst:
            self.net.send_message_cb(src, dst, size_kb, kind, ni_time_s, done=deliver)
            return
        _ReliableSend(self, src, dst, size_kb, kind, deliver, failed, ni_time_s)

    def send_control_cb(
        self,
        src: int,
        dst: int,
        kind: str,
        deliver: Optional[Callable[[], None]] = None,
        failed: Optional[Callable[[], None]] = None,
    ) -> None:
        cfg = self.net.config
        self.send_cb(
            src,
            dst,
            cfg.control_kb,
            kind,
            deliver=deliver,
            failed=failed,
            ni_time_s=cfg.ni_control_time(),
        )


class _ReliableSend:
    """State machine for one :meth:`ReliableMessenger.send_cb` call."""

    __slots__ = (
        "messenger",
        "net",
        "env",
        "src",
        "dst",
        "size_kb",
        "ni_time_s",
        "kind",
        "deliver",
        "failed",
        "spec",
        "seq",
        "attempt",
        "delivered",
        "finished",
    )

    def __init__(
        self,
        messenger: ReliableMessenger,
        src: int,
        dst: int,
        size_kb: float,
        kind: str,
        deliver: Optional[Callable[[], None]],
        failed: Optional[Callable[[], None]],
        ni_time_s: Optional[float],
    ):
        self.messenger = messenger
        self.net = messenger.net
        self.env = messenger.env
        self.src = src
        self.dst = dst
        self.size_kb = size_kb
        self.ni_time_s = ni_time_s
        self.kind = kind
        self.deliver = deliver
        self.failed = failed
        self.spec = messenger.spec_for(kind)
        messenger._seq += 1
        self.seq = messenger._seq
        self.attempt = 0
        self.delivered = False
        self.finished = False
        self._transmit()

    def _transmit(self) -> None:
        self.net.send_message_cb(
            self.src,
            self.dst,
            self.size_kb,
            self.kind,
            self.ni_time_s,
            done=self._on_delivered,
        )
        self.env.schedule_callback(self.spec.timeout_s, self._on_timeout)

    def _on_delivered(self) -> None:
        m = self.messenger
        if self.delivered or self.finished:
            # The receiver has seen this sequence number already: a
            # retransmission (or late original) is deduped — the effect
            # does not fire again — but it is still re-acked.
            m._bump(m.dedups, self.kind)
        else:
            self.delivered = True
            if self.deliver is not None:
                self.deliver()
        if self.finished:
            return
        m._bump(m.acks, self.kind)
        cfg = self.net.config
        self.net.send_message_cb(
            self.dst,
            self.src,
            cfg.control_kb,
            self.kind + "_ack",
            ni_time_s=cfg.ni_control_time(),
            done=self._on_ack,
        )

    def _on_ack(self) -> None:
        self.finished = True

    def _on_timeout(self) -> None:
        if self.finished:
            return
        m = self.messenger
        if self.attempt >= self.spec.max_retries:
            self.finished = True
            m._bump(m.failures, self.kind)
            if not self.delivered and self.failed is not None:
                self.failed()
            return
        self.attempt += 1
        m._bump(m.retries, self.kind)
        backoff = self.spec.backoff(self.attempt)
        if backoff > 0:
            self.env.schedule_callback(backoff, self._retransmit)
        else:
            self._retransmit()

    def _retransmit(self) -> None:
        if self.finished:
            return
        self._transmit()
