"""Runtime state of the unreliable fabric.

One :class:`NetFaultLayer` hangs off an active
:class:`~repro.cluster.network.Interconnect` and answers a single
question at the switch stage of every message: *what happens to this
one?* — dropped (and why), delayed by how much, duplicated or not.

All randomness flows through one ``random.Random`` seeded from the
config, and a rate of zero never touches the RNG, so turning one knob
on cannot perturb the sample path of another.  Draws happen in event
order, which the kernel keeps deterministic, so a given seed yields a
byte-identical fault pattern across runs.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .model import NetFaultConfig, _pair

__all__ = ["NetFaultLayer"]


class NetFaultLayer:
    """Interprets a :class:`NetFaultConfig` against live traffic."""

    def __init__(self, env, config: NetFaultConfig, num_nodes: int):
        self.env = env
        self.config = config
        self.num_nodes = num_nodes
        if config.schedule is not None:
            config.schedule.validate(num_nodes)
        self.rng = random.Random((config.seed << 16) ^ 0x5EEDFA11)
        #: Undirected link -> extra loss rate.
        self._link_loss: Dict[Tuple[int, int], float] = {}
        for a, b, rate in config.link_loss:
            key = _pair(a, b)
            prior = self._link_loss.get(key, 0.0)
            # Independent loss processes compose.
            self._link_loss[key] = prior + rate - prior * rate
        #: Links currently down (undirected pairs).
        self._links_down: Set[Tuple[int, int]] = set()
        #: Nodes on the minority side of the active partition, if any.
        self._partition: Optional[FrozenSet[int]] = None
        # Event log and counters (reporting only; never consulted by the
        # fault decisions themselves).
        self.link_downs = 0
        self.partitions = 0
        self.heals = 0
        self.event_log: List[Tuple[float, str]] = []

    # -- fabric state changes (driven by NetFaultInjector) -----------------

    def link_down(self, a: int, b: int) -> None:
        self._links_down.add(_pair(a, b))
        self.link_downs += 1
        self.event_log.append((self.env.now, f"link_down {a}-{b}"))

    def link_up(self, a: int, b: int) -> None:
        self._links_down.discard(_pair(a, b))
        self.event_log.append((self.env.now, f"link_up {a}-{b}"))

    def start_partition(self, group) -> None:
        self._partition = frozenset(group)
        self.partitions += 1
        self.event_log.append(
            (self.env.now, "partition " + "+".join(str(n) for n in sorted(group)))
        )

    def heal_partition(self) -> None:
        self._partition = None
        self.heals += 1
        self.event_log.append((self.env.now, "heal"))

    # -- per-message judgement ---------------------------------------------

    def blocked(self, src: int, dst: int) -> Optional[str]:
        """Why no message can currently cross ``src -> dst`` (or None)."""
        part = self._partition
        if part is not None and (src in part) != (dst in part):
            return "partition"
        if self._links_down and _pair(src, dst) in self._links_down:
            return "link"
        return None

    def judge(self, src: int, dst: int, kind: str):
        """Fate of one message at the switch: ``(drop_cause, delay, dup)``.

        ``drop_cause`` is ``"partition"``/``"link"``/``"loss"`` or None;
        ``delay`` is the extra fabric delay to add to the switch latency;
        ``dup`` says whether a duplicate copy arrives at the receiver.
        """
        cause = self.blocked(src, dst)
        if cause is not None:
            return cause, 0.0, False
        cfg = self.config
        rate = cfg.loss_rate
        if self._link_loss:
            extra = self._link_loss.get(_pair(src, dst))
            if extra:
                rate = rate + extra - rate * extra
        if rate > 0.0 and self.rng.random() < rate:
            return "loss", 0.0, False
        delay = cfg.extra_delay_s
        if cfg.jitter_s > 0.0:
            delay += self.rng.random() * cfg.jitter_s
        dup = cfg.dup_rate > 0.0 and self.rng.random() < cfg.dup_rate
        return None, delay, dup
