"""Drives a :class:`NetFaultSchedule` against a running simulation.

The timed twin of :class:`repro.faults.injector.FaultInjector`: a single
process walks the schedule, flips link/partition state on the
:class:`~repro.netfaults.layer.NetFaultLayer`, and tells the
distribution policy when a partition heals so it can re-announce
soft state (see ``DistributionPolicy.on_partition_healed``).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from .model import NetFaultEvent

__all__ = ["NetFaultInjector"]


class NetFaultInjector:
    """Applies scheduled fabric events to one simulation."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.layer = sim.cluster.net.netfaults
        schedule = self.layer.config.schedule if self.layer is not None else None
        self.events: Tuple[NetFaultEvent, ...] = (
            schedule.events if schedule is not None else ()
        )
        #: (time, kind) pairs of events applied so far.
        self.log: List[Tuple[float, str]] = []

    def start(self) -> None:
        if self.events:
            self.sim.env.process(self._run(), name="netfault-injector")

    def _run(self) -> Generator:
        env = self.sim.env
        for event in self.events:
            delay = event.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._apply(event)

    def _apply(self, event: NetFaultEvent) -> None:
        layer = self.layer
        if event.kind == "link_down":
            layer.link_down(event.src, event.dst)
        elif event.kind == "link_up":
            layer.link_up(event.src, event.dst)
        elif event.kind == "partition":
            layer.start_partition(event.group)
        elif event.kind == "heal":
            layer.heal_partition()
            # Soft state diverged while the sides were apart; give the
            # policy a chance to re-announce (L2S re-broadcasts server
            # sets and load vectors).
            self.sim.policy.on_partition_healed()
        self.log.append((self.sim.env.now, event.kind))
