"""Declarative description of an unreliable interconnect.

The paper's cluster assumes a perfect fabric: every M-VIA message is
delivered, in order, after a fixed switch latency.  This module describes
the ways a real fabric misbehaves — random loss, duplication, extra
delay/jitter, per-link loss hot spots, links going down, and full cluster
partitions — as plain data, mirroring the style of
:mod:`repro.faults.schedule` (node crash/recover schedules).  The runtime
interpretation lives in :mod:`repro.netfaults.layer`.

Everything here is deterministic by construction: stochastic schedules
derive per-link RNGs from an explicit seed, and the probabilistic knobs
(loss/dup rates) are drawn at message time from the single seeded RNG
owned by the :class:`~repro.netfaults.layer.NetFaultLayer`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "NETFAULT_KINDS",
    "NetFaultEvent",
    "NetFaultSchedule",
    "RetrySpec",
    "NetFaultConfig",
    "DEFAULT_RELIABLE_KINDS",
]

#: Event kinds a :class:`NetFaultSchedule` may carry.
NETFAULT_KINDS = ("link_down", "link_up", "partition", "heal")


def _pair(a: int, b: int) -> Tuple[int, int]:
    """Normalized undirected link key."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class NetFaultEvent:
    """One scheduled change to the fabric's health.

    ``link_down``/``link_up`` take an undirected endpoint pair
    (``src``/``dst``); ``partition`` isolates ``group`` from the rest of
    the cluster until a ``heal`` event; ``heal`` reconnects everything.
    """

    kind: str
    at: float
    src: Optional[int] = None
    dst: Optional[int] = None
    group: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in NETFAULT_KINDS:
            raise ValueError(
                f"unknown netfault kind {self.kind!r}; expected one of {NETFAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind in ("link_down", "link_up"):
            if self.src is None or self.dst is None:
                raise ValueError(f"{self.kind} event needs src and dst endpoints")
            if self.src == self.dst:
                raise ValueError("link events need two distinct endpoints")
        if self.kind == "partition" and len(self.group) < 1:
            raise ValueError("partition event needs a non-empty node group")

    @staticmethod
    def parse(token: str) -> List["NetFaultEvent"]:
        """Parse one schedule token into its events.

        Grammar (times in simulated seconds)::

            down:A-B@T          link A<->B goes down at T
            up:A-B@T            link A<->B comes back at T
            link:A-B@T1..T2     sugar: down at T1, up at T2
            partition:A+B@T1..T2   nodes {A,B} isolated from the rest
                                   between T1 and T2 (omit ..T2 to never heal)
        """
        try:
            head, at_part = token.split("@", 1)
            kind, spec = head.split(":", 1)
        except ValueError:
            raise ValueError(
                f"malformed netfault token {token!r}; expected kind:spec@time"
            ) from None
        kind = kind.strip().lower()
        if ".." in at_part:
            start_s, end_s = at_part.split("..", 1)
            start, end = float(start_s), float(end_s)
            if end <= start:
                raise ValueError(f"empty interval in netfault token {token!r}")
        else:
            start, end = float(at_part), None
        if kind in ("down", "up", "link"):
            try:
                a_s, b_s = spec.split("-", 1)
                a, b = int(a_s), int(b_s)
            except ValueError:
                raise ValueError(
                    f"malformed link spec in {token!r}; expected A-B"
                ) from None
            if kind == "down":
                return [NetFaultEvent("link_down", start, src=a, dst=b)]
            if kind == "up":
                return [NetFaultEvent("link_up", start, src=a, dst=b)]
            if end is None:
                raise ValueError(f"link token {token!r} needs a T1..T2 interval")
            return [
                NetFaultEvent("link_down", start, src=a, dst=b),
                NetFaultEvent("link_up", end, src=a, dst=b),
            ]
        if kind == "partition":
            try:
                group = tuple(sorted(int(n) for n in spec.split("+")))
            except ValueError:
                raise ValueError(
                    f"malformed partition group in {token!r}; expected A+B+..."
                ) from None
            events = [NetFaultEvent("partition", start, group=group)]
            if end is not None:
                events.append(NetFaultEvent("heal", end))
            return events
        raise ValueError(f"unknown netfault token kind {kind!r} in {token!r}")


@dataclass(frozen=True)
class NetFaultSchedule:
    """A time-ordered list of :class:`NetFaultEvent`."""

    events: Tuple[NetFaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate(self, nodes: int) -> None:
        """Raise if any event references a node outside ``range(nodes)``."""
        for e in self.events:
            ids = list(e.group)
            if e.src is not None:
                ids.append(e.src)
            if e.dst is not None:
                ids.append(e.dst)
            for n in ids:
                if not 0 <= n < nodes:
                    raise ValueError(
                        f"netfault event {e.kind}@{e.at:g} references node {n} "
                        f"outside a {nodes}-node cluster"
                    )
            if e.kind == "partition" and len(e.group) >= nodes:
                raise ValueError(
                    f"partition group {e.group} must leave at least one node "
                    f"on the majority side of a {nodes}-node cluster"
                )

    @staticmethod
    def parse(spec: str) -> "NetFaultSchedule":
        """Parse a comma/space-separated list of schedule tokens."""
        events: List[NetFaultEvent] = []
        for token in spec.replace(",", " ").split():
            events.extend(NetFaultEvent.parse(token))
        return NetFaultSchedule(tuple(events))

    @staticmethod
    def partition(
        group: Sequence[int], start: float, end: Optional[float] = None
    ) -> "NetFaultSchedule":
        """One partition isolating ``group`` between ``start`` and ``end``."""
        events = [NetFaultEvent("partition", start, group=tuple(sorted(group)))]
        if end is not None:
            events.append(NetFaultEvent("heal", end))
        return NetFaultSchedule(tuple(events))

    @staticmethod
    def stochastic_links(
        nodes: int,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: int = 0,
    ) -> "NetFaultSchedule":
        """Exponential link up/down cycles for every undirected pair.

        Mirrors :meth:`repro.faults.schedule.FaultSchedule.stochastic`:
        each link owns an RNG derived from ``seed`` and its endpoints, so
        adding links (or reordering the loop) never perturbs another
        link's sample path.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        events: List[NetFaultEvent] = []
        for a in range(nodes):
            for b in range(a + 1, nodes):
                rng = random.Random((seed << 20) ^ (a * 0x9E3779B1) ^ (b * 0x85EBCA77))
                t = rng.expovariate(1.0 / mtbf_s)
                while t < horizon_s:
                    events.append(NetFaultEvent("link_down", t, src=a, dst=b))
                    t += rng.expovariate(1.0 / mttr_s)
                    if t >= horizon_s:
                        break
                    events.append(NetFaultEvent("link_up", t, src=a, dst=b))
                    t += rng.expovariate(1.0 / mtbf_s)
        return NetFaultSchedule(tuple(events))


@dataclass(frozen=True)
class RetrySpec:
    """Per-message-kind reliability parameters (stop-and-wait ARQ).

    ``timeout_s`` is the ack deadline for one transmission attempt;
    ``backoff(attempt)`` (1-based) is the capped exponential pause before
    retransmission number ``attempt``.  The unloaded one-way control
    latency is ~19 us, but the paper's closed-loop saturation methodology
    keeps NI and CPU queues deep, so real round trips stretch into the
    milliseconds; a 10 ms deadline keeps spurious retransmissions (which
    the receiver dedups, but which still cost fabric and CPU time) rare
    while four attempts still push residual loss below 1e-7 at 1% message
    loss and detect an unreachable peer within ~100 ms.
    """

    timeout_s: float = 10e-3
    max_retries: int = 3
    base_backoff_s: float = 5e-3
    multiplier: float = 2.0
    cap_s: float = 50e-3

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.cap_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Pause before retransmission ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_backoff_s * self.multiplier ** (attempt - 1), self.cap_s)


#: Message kinds the reliability protocol covers by default: every kind
#: whose loss wedges a policy or loses application state.  Load broadcasts
#: (``l2s_load``) stay fire-and-forget on purpose — L2S's staleness
#: detection is the defense there, matching its soft-state design.
DEFAULT_RELIABLE_KINDS = (
    "handoff",
    "lard_done",
    "lardng_query",
    "lardng_reply",
    "dfs_req",
    "dfs_data",
    "l2s_set",
)


@dataclass(frozen=True)
class NetFaultConfig:
    """Every knob of the unreliable-interconnect layer.

    With every rate at zero and no schedule the config is *inert*
    (:attr:`active` is False) and the interconnect behaves — bit for
    bit — as if no netfault layer existed at all.
    """

    #: Global probability that any message is dropped in the fabric.
    loss_rate: float = 0.0
    #: Probability a delivered message is duplicated (the copy charges the
    #: receiver's NI and CPU again; the effect still fires exactly once).
    dup_rate: float = 0.0
    #: Fixed extra switch delay added to every message (seconds).
    extra_delay_s: float = 0.0
    #: Uniform random jitter in [0, jitter_s) added on top (seconds).
    jitter_s: float = 0.0
    #: Extra per-link loss: ``(a, b, rate)`` triples, undirected; composes
    #: with ``loss_rate`` as independent loss processes.
    link_loss: Tuple[Tuple[int, int, float], ...] = ()
    #: Timed link-down / partition events.
    schedule: Optional[NetFaultSchedule] = None
    #: Seed for the layer's message-time RNG (loss/dup/jitter draws).
    seed: int = 0
    #: Message kinds covered by the ack/retry protocol.
    reliable_kinds: Tuple[str, ...] = DEFAULT_RELIABLE_KINDS
    #: Per-kind overrides of the retry parameters.
    protocol: Tuple[Tuple[str, RetrySpec], ...] = ()
    #: Retry parameters for covered kinds without an override.
    default_spec: RetrySpec = field(default_factory=RetrySpec)
    #: When a partitioned-DFS remote fetch exhausts its retries, read a
    #: degraded local-disk replica instead of failing the request.
    dfs_local_fallback: bool = True
    #: How many times the front end may re-run the distribution decision
    #: after a hand-off exhausts its message retries.
    handoff_redispatch: int = 2
    #: Attach the layer and reliability protocol even with every fault
    #: knob at zero.  Nothing is ever dropped, but covered kinds pay for
    #: acks — the protocol-overhead baseline, and the calibration twin
    #: of a timed-schedule run (identical timeline up to the first
    #: scheduled event).
    always_on: bool = False

    def __post_init__(self) -> None:
        for name in ("loss_rate", "dup_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.extra_delay_s < 0 or self.jitter_s < 0:
            raise ValueError("delays must be non-negative")
        for a, b, rate in self.link_loss:
            if a == b:
                raise ValueError(f"link_loss entry ({a}, {b}) is not a link")
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"link loss rate must be in [0, 1), got {rate}")
        if self.handoff_redispatch < 0:
            raise ValueError("handoff_redispatch must be >= 0")

    @property
    def active(self) -> bool:
        """Whether this config perturbs the fabric at all."""
        return bool(
            self.loss_rate > 0.0
            or self.dup_rate > 0.0
            or self.extra_delay_s > 0.0
            or self.jitter_s > 0.0
            or self.link_loss
            or (self.schedule is not None and len(self.schedule) > 0)
            or self.always_on
        )

    def spec_for(self, kind: str) -> RetrySpec:
        """The retry parameters governing messages of ``kind``."""
        for k, spec in self.protocol:
            if k == kind:
                return spec
        return self.default_spec
