"""Unreliable-interconnect modeling: fault layer, schedules, reliability.

The paper assumes a perfect intra-cluster fabric.  This package makes it
unreliable — seeded message loss, duplication, delay/jitter, link
outages, partitions — and supplies the ack/retry protocol the policies
use to survive it.  See ``docs/NETFAULTS.md``.
"""

from .injector import NetFaultInjector
from .layer import NetFaultLayer
from .model import (
    DEFAULT_RELIABLE_KINDS,
    NETFAULT_KINDS,
    NetFaultConfig,
    NetFaultEvent,
    NetFaultSchedule,
    RetrySpec,
)
from .protocol import ReliableMessenger

__all__ = [
    "DEFAULT_RELIABLE_KINDS",
    "NETFAULT_KINDS",
    "NetFaultConfig",
    "NetFaultEvent",
    "NetFaultInjector",
    "NetFaultLayer",
    "NetFaultSchedule",
    "ReliableMessenger",
    "RetrySpec",
]
