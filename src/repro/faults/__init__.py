"""``repro.faults`` — fault injection, recovery, and availability timelines.

The paper's central argument for L2S is robustness: LARD's dedicated
front-end "represents both a single point of failure and a potential
bottleneck", while L2S "has no single point of failure" (Section 4).
This package makes that claim measurable beyond a single static crash:

* :class:`FaultSchedule` / :class:`FaultEvent` — deterministic timed
  events (``crash``, ``recover``, ``slow``) plus a seeded stochastic
  MTBF/MTTR generator;
* :class:`FaultInjector` — the simulation process that executes a
  schedule (timed events) and fires count-triggered events from the
  driver's completion hook;
* :class:`RetryPolicy` — client-side timeout and capped exponential
  backoff for aborted requests;
* :class:`AvailabilityTimeline` / :class:`TimelineSample` — sampled
  goodput, failure/retry counts, per-window miss rate (the cache-reheat
  transient), and per-node state over simulated time.

Recovery semantics (wired through :mod:`repro.sim` and the policies):
a recovering node rejoins with a **cold cache** and zero connections;
in-flight requests on a crashed node abort and, under a retry policy,
are re-issued after backoff; each policy repairs its own distributed
state on death *and* rejoin (see ``docs/FAULTS.md``).
"""

from .injector import FaultInjector
from .schedule import FaultEvent, FaultSchedule, RetryPolicy
from .timeline import AvailabilityTimeline, TimelineSample

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "RetryPolicy",
    "AvailabilityTimeline",
    "TimelineSample",
]
