"""Availability timeline: goodput, failures, and node state over time.

The whole-window averages the scaling experiments report hide exactly
what a fault run is about: the outage dip, the retry storm, and the
cache-reheat transient after a cold restart.  This instrument samples
the run at a fixed interval and keeps a row per window:

* **goodput** — completed requests per second in the window;
* **failures / retries / shed** — terminal aborts, client re-issues,
  and admission-control rejections;
* **window miss rate** — the fraction of the window's completions that
  missed the service node's cache (the reheat transient after a
  recovery shows up here as a spike that decays back to steady state);
* **node states** — one character per node: ``U`` up, ``S`` slowed,
  ``D`` down.

Fault events executed by the injector are annotated onto the timeline
(:attr:`TimelineBase.events`) so renders and reports can mark the
crash/recover instants against the goodput curve.

The instrument is split in two: :class:`TimelineBase` holds the
substrate-neutral core — window counters, the sample rows, the
analysis helpers, CSV and ASCII rendering — and knows nothing about
*whose* seconds it is sampling.  :class:`AvailabilityTimeline` is the
DES instrument (an :class:`~repro.des.Environment` process samples
simulated time); :class:`repro.live.timeline.LiveAvailabilityTimeline`
drives the same core from an asyncio task against a wall clock, which
is what makes sim and live availability curves directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..des import Environment

__all__ = ["TimelineSample", "TimelineBase", "AvailabilityTimeline"]


@dataclass(frozen=True)
class TimelineSample:
    """One sampling window of the availability timeline."""

    #: Window end time (simulated or wall seconds, per substrate).
    t: float
    #: Completed requests per second inside the window.
    goodput_rps: float
    #: Requests completed inside the window.
    completions: int
    #: Requests that permanently failed inside the window.
    failures: int
    #: Client retries issued inside the window.
    retries: int
    #: Cache miss fraction of the window's completions.
    miss_rate: float
    #: Open connections across the cluster at sample time.
    open_connections: int
    #: One char per node: U=up, S=slow, D=down.
    node_states: str
    #: Requests rejected by admission shedding inside the window.
    shed: int = 0


class TimelineBase:
    """Substrate-neutral core of the availability instrument.

    Subclasses supply the sampling loop and the cluster view; this base
    owns the window counters, the recorded rows, the fault-event
    annotations, and every analysis/rendering helper.
    """

    def __init__(self) -> None:
        self.samples: List[TimelineSample] = []
        #: Injector events executed during the run: (time, kind, node).
        self.events: List[Tuple[float, str, int]] = []
        self._last_t = 0.0
        self._completions = 0
        self._misses = 0
        self._failures = 0
        self._retries = 0
        self._shed = 0

    # -- driver hooks -------------------------------------------------------

    def record_completion(self, was_miss: bool) -> None:
        self._completions += 1
        if was_miss:
            self._misses += 1

    def record_failure(self) -> None:
        self._failures += 1

    def record_retry(self) -> None:
        self._retries += 1

    def record_shed(self) -> None:
        self._shed += 1

    # -- sampling core ------------------------------------------------------

    def _close_window(
        self, now: float, open_connections: int, node_states: str
    ) -> TimelineSample:
        """Close the current window at time ``now`` and append its row."""
        elapsed = now - self._last_t
        done = self._completions
        sample = TimelineSample(
            t=now,
            goodput_rps=done / elapsed if elapsed > 0 else 0.0,
            completions=done,
            failures=self._failures,
            retries=self._retries,
            miss_rate=self._misses / done if done else 0.0,
            open_connections=open_connections,
            node_states=node_states,
            shed=self._shed,
        )
        self.samples.append(sample)
        self._last_t = now
        self._completions = self._misses = self._failures = 0
        self._retries = self._shed = 0
        return sample

    # -- analysis -----------------------------------------------------------

    def goodput_between(self, t0: float, t1: float) -> float:
        """Mean goodput over samples whose window end falls in (t0, t1]."""
        rows = [s for s in self.samples if t0 < s.t <= t1]
        if not rows:
            return 0.0
        return sum(s.goodput_rps for s in rows) / len(rows)

    def miss_rate_between(self, t0: float, t1: float) -> float:
        """Completion-weighted miss rate over (t0, t1]."""
        rows = [s for s in self.samples if t0 < s.t <= t1]
        done = sum(s.completions for s in rows)
        if not done:
            return 0.0
        return sum(s.miss_rate * s.completions for s in rows) / done

    def time_to_recover(
        self, recover_at: float, target_rps: float
    ) -> Optional[float]:
        """Seconds from ``recover_at`` until goodput first reaches
        ``target_rps`` again (None if it never does)."""
        for s in self.samples:
            if s.t >= recover_at and s.goodput_rps >= target_rps:
                return max(0.0, s.t - recover_at)
        return None

    # -- rendering ----------------------------------------------------------

    def to_csv(self) -> str:
        lines = [
            "t,goodput_rps,completions,failures,retries,miss_rate,"
            "open_connections,node_states,shed"
        ]
        for s in self.samples:
            lines.append(
                f"{s.t:.6g},{s.goodput_rps:.6g},{s.completions},{s.failures},"
                f"{s.retries},{s.miss_rate:.6g},{s.open_connections},"
                f"{s.node_states},{s.shed}"
            )
        return "\n".join(lines) + "\n"

    def render(self, width: int = 30, max_rows: int = 60) -> str:
        """ASCII timeline: one row per window, goodput as a bar."""
        if not self.samples:
            return "(no samples)"
        stride = max(1, (len(self.samples) + max_rows - 1) // max_rows)
        shown = list(range(0, len(self.samples), stride))
        peak = max(s.goodput_rps for s in self.samples) or 1.0
        marks = {}
        for t, kind, node in self.events:
            # Snap each event to the nearest *displayed* row so stride
            # subsampling can't drop its annotation.
            i = self._sample_index(t)
            disp = min(shown, key=lambda j: abs(j - i))
            marks.setdefault(disp, []).append(f"{kind}({node})")
        lines = [
            f"{'t (s)':>9} {'goodput':>9} {'miss':>6} {'fail':>5} "
            f"{'retry':>5} {'nodes':<{len(self.samples[0].node_states)}} goodput bar"
        ]
        for i in shown:
            s = self.samples[i]
            bar = "#" * int(round(width * s.goodput_rps / peak))
            note = " ".join(marks.get(i, []))
            note = f"  <- {note}" if note else ""
            lines.append(
                f"{s.t:>9.3f} {s.goodput_rps:>9,.0f} {s.miss_rate:>6.1%} "
                f"{s.failures:>5} {s.retries:>5} {s.node_states} "
                f"|{bar:<{width}}|{note}"
            )
        return "\n".join(lines)

    def _sample_index(self, t: float) -> int:
        """Index of the sample window containing time ``t``."""
        for i, s in enumerate(self.samples):
            if t <= s.t:
                return i
        return len(self.samples) - 1


class AvailabilityTimeline(TimelineBase):
    """Sampled availability instrument for one simulation run."""

    def __init__(self, env: Environment, cluster, interval_s: float):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        super().__init__()
        self.env = env
        self.cluster = cluster
        self.interval_s = interval_s
        self._last_t = env.now

    # -- driver hooks -------------------------------------------------------

    def mark_event(self, kind: str, node: int) -> None:
        """Annotate an executed fault event at the current time."""
        self.events.append((self.env.now, kind, node))

    # -- sampling -----------------------------------------------------------

    def start(self, stop: Callable[[], bool]) -> None:
        """Start the sampler process; it exits once ``stop()`` is true.

        The sampler checks ``stop`` *after* each window so the final
        partial window of a run is still recorded.
        """
        self.env.process(self._sampler(stop), name="availability-timeline")

    def _sampler(self, stop: Callable[[], bool]):
        while True:
            yield self.env.timeout(self.interval_s)
            self.take_sample()
            if stop():
                return

    def take_sample(self) -> TimelineSample:
        """Close the current window and append its row."""
        return self._close_window(
            self.env.now,
            open_connections=sum(
                n.open_connections for n in self.cluster.nodes
            ),
            node_states="".join(
                {"up": "U", "slow": "S", "down": "D"}[n.state]
                for n in self.cluster.nodes
            ),
        )
