"""Fault schedules: *what* goes wrong, *when*, and how clients cope.

A :class:`FaultSchedule` is an ordered set of :class:`FaultEvent`\\ s:

* ``crash(node, t)`` — the node dies: its cache contents, connection
  state, and policy soft state are lost; in-flight requests there abort;
* ``recover(node, t)`` — the node reboots and rejoins with a **cold
  (flushed) cache** and a zeroed connection count;
* ``slow(node, t, factor)`` — the node's CPU runs at ``factor`` times
  its base speed until changed again (``factor=1.0`` restores it) —
  a fail-slow / brown-out model.

Events trigger either at a simulated **time** (``at`` seconds) or after
a **finished-request count** (``after_requests``), the latter mostly for
reproducible tests that pin a crash to a point in the request stream.

:meth:`FaultSchedule.stochastic` draws a seeded MTBF/MTTR crash/recover
sequence per node (exponential inter-failure and repair times), so long
availability runs can be generated reproducibly from a single seed.

:class:`RetryPolicy` describes the client side of a fault: an aborted
(or timed-out) request is retried after a capped exponential backoff,
up to ``max_retries`` attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FaultEvent", "FaultSchedule", "RetryPolicy"]

#: Recognized fault kinds.
KINDS = ("crash", "recover", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One timed (or count-triggered) fault on one node."""

    #: "crash", "recover", or "slow".
    kind: str
    #: Target node id.
    node: int
    #: Simulated time (seconds) at which the event fires.
    at: Optional[float] = None
    #: Alternative trigger: fire when this many requests have finished
    #: (completed + permanently failed).  Exactly one of ``at`` /
    #: ``after_requests`` must be set.
    after_requests: Optional[int] = None
    #: CPU speed multiplier for ``slow`` events (0.5 = half speed,
    #: 1.0 = restore).  Ignored for crash/recover.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {KINDS}")
        if self.node < 0:
            raise ValueError(f"node must be non-negative, got {self.node}")
        if (self.at is None) == (self.after_requests is None):
            raise ValueError("exactly one of at / after_requests must be set")
        if self.at is not None and self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.after_requests is not None and self.after_requests < 0:
            raise ValueError("after_requests must be non-negative")
        if self.kind == "slow" and self.factor <= 0:
            raise ValueError(f"slow factor must be positive, got {self.factor}")

    @property
    def timed(self) -> bool:
        return self.at is not None

    @classmethod
    def parse(cls, token: str) -> "FaultEvent":
        """Parse a CLI token: ``crash:2@0.5``, ``recover:2@1.5``,
        ``slow:3@1.0x0.25`` (node 3 at t=1.0 s runs at quarter speed)."""
        try:
            kind, rest = token.strip().split(":", 1)
            node_s, when = rest.split("@", 1)
            factor = 1.0
            if "x" in when:
                when, factor_s = when.split("x", 1)
                factor = float(factor_s)
            return cls(kind=kind, node=int(node_s), at=float(when), factor=factor)
        except (ValueError, TypeError) as exc:
            if isinstance(exc, ValueError) and "fault kind" in str(exc):
                raise
            raise ValueError(
                f"cannot parse fault event {token!r}; expected "
                f"kind:NODE@TIME or slow:NODE@TIMExFACTOR"
            ) from None

    def describe(self) -> str:
        when = f"t={self.at:g}s" if self.timed else f"n={self.after_requests}"
        extra = f" x{self.factor:g}" if self.kind == "slow" else ""
        return f"{self.kind}({self.node}) @ {when}{extra}"


class FaultSchedule:
    """An ordered collection of fault events for one simulation run."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = list(events)
        #: Timed events sorted by time (stable for equal times).
        self.timed: List[FaultEvent] = sorted(
            (e for e in self.events if e.timed), key=lambda e: e.at
        )
        #: Count-triggered events sorted by trigger count.
        self.counted: List[FaultEvent] = sorted(
            (e for e in self.events if not e.timed), key=lambda e: e.after_requests
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def validate(self, nodes: int) -> None:
        """Check every event targets a node inside the cluster."""
        for e in self.events:
            if not 0 <= e.node < nodes:
                raise ValueError(
                    f"fault event {e.describe()} targets node {e.node}, "
                    f"outside the {nodes}-node cluster"
                )

    def describe(self) -> str:
        return ", ".join(e.describe() for e in self.timed + self.counted) or "(empty)"

    # -- constructors -------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a comma-separated CLI spec, e.g.
        ``"crash:2@0.5,recover:2@1.5,slow:1@0.8x0.5"``."""
        tokens = [t for t in spec.replace(";", ",").split(",") if t.strip()]
        return cls(FaultEvent.parse(t) for t in tokens)

    @classmethod
    def single_crash(
        cls,
        node: int,
        at: Optional[float] = None,
        after_requests: Optional[int] = None,
    ) -> "FaultSchedule":
        """A single crash with no recovery (the legacy experiment shape)."""
        return cls([FaultEvent("crash", node, at=at, after_requests=after_requests)])

    @classmethod
    def crash_and_recover(
        cls, node: int, crash_at: float, recover_at: float
    ) -> "FaultSchedule":
        """Crash at ``crash_at`` and reboot (cold) at ``recover_at``."""
        if recover_at <= crash_at:
            raise ValueError(
                f"recover_at ({recover_at}) must be after crash_at ({crash_at})"
            )
        return cls(
            [
                FaultEvent("crash", node, at=crash_at),
                FaultEvent("recover", node, at=recover_at),
            ]
        )

    @classmethod
    def stochastic(
        cls,
        nodes: int,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: int = 0,
        exclude: Sequence[int] = (),
    ) -> "FaultSchedule":
        """Seeded MTBF/MTTR crash/recover sequence over ``horizon_s``.

        Each node (except ``exclude``) alternates exponential up-times
        (mean ``mtbf_s``) and repair times (mean ``mttr_s``); identical
        seeds give identical schedules.  A crash whose repair would land
        beyond the horizon still gets its recover event (so no node is
        left permanently dead by truncation artifacts).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        excluded = set(exclude)
        events: List[FaultEvent] = []
        for node in range(nodes):
            if node in excluded:
                continue
            rng = random.Random((seed << 20) ^ (node * 0x9E3779B1))
            t = rng.expovariate(1.0 / mtbf_s)
            while t < horizon_s:
                events.append(FaultEvent("crash", node, at=t))
                t += rng.expovariate(1.0 / mttr_s)
                events.append(FaultEvent("recover", node, at=t))
                t += rng.expovariate(1.0 / mtbf_s)
        return cls(events)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side reaction to an aborted request.

    An aborted request is re-issued after ``backoff(attempt)`` seconds —
    capped exponential backoff — up to ``max_retries`` times, after which
    it counts as permanently failed.  ``timeout_s``, when set, bounds how
    long a client waits for a response before giving up and retrying
    (the request is interrupted wherever it is).
    """

    #: Maximum re-issues per request (0 = fail immediately, the legacy
    #: behaviour).  Must be finite: unbounded retries against a permanent
    #: outage would never let the simulation terminate.
    max_retries: int = 4
    #: First backoff delay (seconds).
    base_backoff_s: float = 0.05
    #: Backoff growth per attempt.
    multiplier: float = 2.0
    #: Backoff ceiling (seconds).
    cap_s: float = 1.0
    #: Client-side response timeout (seconds); None disables the timer.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_s <= 0:
            raise ValueError("base_backoff_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap_s < self.base_backoff_s:
            raise ValueError("cap_s must be >= base_backoff_s")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def backoff(self, attempt: int) -> float:
        """Delay before re-issue number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.cap_s, self.base_backoff_s * self.multiplier ** (attempt - 1))
