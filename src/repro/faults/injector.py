"""FaultInjector: a DES process that executes a :class:`FaultSchedule`.

Timed events run from a single simulation process that sleeps until each
event's time and then applies it; count-triggered events are applied by
the driver's request-completion hook through :meth:`notify_finished`.
Application itself is delegated back to the simulation driver
(``crash_node`` / ``recover_node`` / ``slow_node``) so the injector
stays a pure scheduler and the recovery semantics live in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from .schedule import FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.driver import Simulation

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a fault schedule against a running simulation."""

    def __init__(self, sim: "Simulation", schedule: FaultSchedule):
        schedule.validate(sim.config.nodes)
        self.sim = sim
        self.schedule = schedule
        #: Count-triggered events not yet fired (sorted by trigger).
        self._counted: List[FaultEvent] = list(schedule.counted)
        #: Events actually executed: (time, kind, node).
        self.log: List[Tuple[float, str, int]] = []

    def start(self) -> None:
        """Spawn the timed-event process (no-op for count-only schedules)."""
        if self.schedule.timed:
            self.sim.env.process(self._run_timed(), name="fault-injector")

    def _run_timed(self):
        env = self.sim.env
        for event in self.schedule.timed:
            delay = event.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._apply(event)

    def notify_finished(self, finished: int) -> None:
        """Driver hook: fire count-triggered events whose trigger passed."""
        while self._counted and finished >= self._counted[0].after_requests:
            self._apply(self._counted.pop(0))

    def _apply(self, event: FaultEvent) -> None:
        sim = self.sim
        if event.kind == "crash":
            sim.crash_node(event.node)
        elif event.kind == "recover":
            sim.recover_node(event.node)
        else:
            sim.slow_node(event.node, event.factor)
        self.log.append((sim.env.now, event.kind, event.node))
