"""The front door: bounded accept queue, deadline drop, priority classes.

The controller models the front-end's accept queue without owning a
queue data structure (neither substrate actually parks requests — the
DES dispatches admitted requests immediately and queueing shows up as
service latency; the live front-end does the same with coroutines).
What it tracks is the *admitted in-flight population*:

* requests up to the concurrency ``limit`` are considered in service;
* requests beyond it are the backlog — the virtual accept queue, whose
  depth is bounded by ``min(queue_slots, limit)``.  Tying the queue to
  the limit matters when an adaptive limiter is attached: with a fixed
  allowance, a collapsed limit still admits ``queue_slots`` of backlog,
  those requests queue behind the bottleneck, their latencies keep the
  limiter's signal above target, and the limit never recovers — the
  controller itself becomes the metastable failure it exists to
  prevent;
* a request whose **estimated** queue wait (backlog position times the
  EWMA service latency over the limit's drain rate) already exceeds its
  deadline is rejected immediately — failing in microseconds instead of
  after ``deadline_s`` of futile queueing is precisely what keeps
  goodput up through a flash crowd;
* priority classes share the queue unevenly: class ``p`` (0 = highest)
  may only occupy the first ``(classes - p) / classes`` of the queue
  slots, so low-priority work sheds first as the backlog grows.

The concurrency limit is either the static ``max_inflight`` or, when an
:class:`~repro.overload.limiter.AdaptiveConcurrencyLimit` is attached,
that limiter's current value — which is how observed back-end latency
backpressures the front door.

Substrate-neutral: every method takes ``now`` as an argument; the
controller never reads a clock (simlint REP108).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .limiter import AdaptiveConcurrencyLimit

__all__ = ["AdmissionConfig", "AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one admission controller."""

    #: Static concurrency cap.  ``None`` requires an attached limiter.
    max_inflight: Optional[int] = None
    #: Bounded accept-queue depth beyond the concurrency cap; the
    #: effective bound is ``min(queue_slots, limit)`` (module docstring).
    queue_slots: int = 64
    #: Client deadline; a request whose estimated queue wait exceeds it
    #: is dropped at the door.  ``None`` disables the deadline check.
    deadline_s: Optional[float] = None
    #: Number of priority classes (1 = no prioritization).
    classes: int = 1
    #: EWMA weight for the observed service latency feeding the
    #: queue-wait estimate.
    latency_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.queue_slots < 0:
            raise ValueError(f"queue_slots must be >= 0, got {self.queue_slots}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.classes < 1:
            raise ValueError(f"classes must be >= 1, got {self.classes}")
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ValueError("latency_alpha must be in (0, 1]")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.try_admit` call."""

    admitted: bool
    #: Shed reason when rejected: "queue_full", "deadline", "unhealthy".
    reason: Optional[str] = None


_ADMITTED = AdmissionDecision(True)


class AdmissionController:
    """Shared front-door admission state (see module docstring)."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        limiter: Optional[AdaptiveConcurrencyLimit] = None,
    ):
        self.config = config or AdmissionConfig()
        self.limiter = limiter
        if self.config.max_inflight is None and limiter is None:
            raise ValueError(
                "AdmissionController needs max_inflight or an attached limiter"
            )
        #: Currently admitted, not yet released.
        self.inflight = 0
        #: Admitted grand total (run-wide).
        self.admitted = 0
        #: Shed totals by reason (run-wide).
        self.shed_by_reason: Dict[str, int] = {}
        self._ewma_latency: Optional[float] = None

    @property
    def limit(self) -> int:
        """The concurrency cap in force right now."""
        if self.limiter is not None:
            return self.limiter.limit
        assert self.config.max_inflight is not None
        return self.config.max_inflight

    @property
    def shed_total(self) -> int:
        return sum(self.shed_by_reason.values())

    def _shed(self, reason: str) -> AdmissionDecision:
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        return AdmissionDecision(False, reason)

    def try_admit(
        self, now: float, priority: int = 0, capacity_ok: bool = True
    ) -> AdmissionDecision:
        """Admit or shed one arriving request.

        ``capacity_ok=False`` is the substrate saying the cluster cannot
        serve anything useful right now (the live front-end passes its
        ``min_healthy`` health check here) — the request is shed with
        reason "unhealthy" so all shedding flows through one set of
        books on both substrates.
        """
        if not capacity_ok:
            return self._shed("unhealthy")
        limit = self.limit
        if self.inflight < limit:
            self.inflight += 1
            self.admitted += 1
            return _ADMITTED
        backlog = self.inflight - limit
        cfg = self.config
        p = min(max(0, priority), cfg.classes - 1)
        slots = min(cfg.queue_slots, limit)
        allowed = (slots * (cfg.classes - p)) // cfg.classes
        if backlog >= allowed:
            return self._shed("queue_full")
        if cfg.deadline_s is not None and self._ewma_latency is not None:
            est_wait = (backlog + 1) * self._ewma_latency / max(1, limit)
            if est_wait > cfg.deadline_s:
                return self._shed("deadline")
        self.inflight += 1
        self.admitted += 1
        return _ADMITTED

    def release(self, now: float, latency_s: Optional[float] = None) -> None:
        """An admitted request finished (completed *or* failed).

        ``latency_s`` — the observed service latency for completed
        requests — feeds the queue-wait EWMA and the attached limiter;
        pass ``None`` for failures (a fault's latency says nothing about
        the service rate).
        """
        if self.inflight > 0:
            self.inflight -= 1
        if latency_s is not None and latency_s >= 0:
            if self._ewma_latency is None:
                self._ewma_latency = latency_s
            else:
                self._ewma_latency += self.config.latency_alpha * (
                    latency_s - self._ewma_latency
                )
            if self.limiter is not None:
                self.limiter.observe(latency_s, now)

    def snapshot(self) -> dict:
        out = {
            "limit": self.limit,
            "inflight": self.inflight,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed_by_reason.items())),
        }
        if self.limiter is not None:
            out["limiter"] = self.limiter.snapshot()
        return out
