"""Adaptive concurrency limiting: latency-driven backpressure.

The limit is the front door's concurrency cap (how many admitted
requests may be in flight at once).  Two estimators:

* **aimd** — TCP-style additive-increase/multiplicative-decrease on a
  short-term EWMA of the service latency: while the smoothed latency
  sits at or under the target, every observation grows the limit by
  ``increase / limit`` (one full step per limit's worth of good
  requests); when it rises over the target the limit is cut by
  ``decrease`` — **at most once per congestion window**.  Two details
  both matter for stability.  The signal is the EWMA, not the raw
  sample: real service-time distributions have fat tails (a locality
  policy serializes its hot files), so a fixed fraction of individual
  samples exceed any sane target even with no overload at all, and an
  AIMD fed raw samples equilibrates far below capacity.  And after a
  cut, further decreases are suppressed until ``now`` passes the
  latency horizon of the cut: the requests already in flight when the
  limit dropped will finish slow regardless, and punishing the new
  limit for them drives it to the floor and holds it there — exactly
  TCP's rationale for one halving per window.
* **gradient** — the limit tracks the ratio of a long-term to a
  short-term latency EWMA (the "gradient").  When the short-term
  latency rises above trend the gradient drops below 1 and the limit
  contracts; a small ``sqrt(limit)`` headroom term keeps it probing
  upward when latencies are flat.  Reacts faster than AIMD to queue
  buildup and recovers without overshooting.

No clock, no RNG: ``observe`` takes latency (and the caller's ``now``,
unused but part of the substrate-neutral signature) and the state is a
pure fold over the observation stream — the same inputs always produce
the same limit trajectory on either substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LimitConfig", "AdaptiveConcurrencyLimit"]

_MODES = ("aimd", "gradient")


@dataclass(frozen=True)
class LimitConfig:
    """Knobs for one adaptive limit instance."""

    #: Estimator: "aimd" or "gradient".
    mode: str = "aimd"
    #: Hard floor — the limit never starves the cluster entirely.
    min_limit: int = 4
    #: Hard ceiling — bounds the accept queue the limit can imply.
    max_limit: int = 4096
    #: Starting limit before any latency has been observed.
    initial: int = 64
    #: aimd: smoothed latency at or under this grows the limit, over it
    #: shrinks.
    target_latency_s: float = 0.05
    #: aimd: additive step credited per limit's worth of good requests.
    increase: float = 1.0
    #: aimd: multiplicative backoff factor on a slow request.
    decrease: float = 0.7
    #: EWMA weight of the short-term latency estimate (both modes).
    short_alpha: float = 0.3
    #: gradient: EWMA weight of the long-term latency estimate.
    long_alpha: float = 0.05
    #: gradient: smoothing applied when moving toward the new limit.
    smoothing: float = 0.2

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown limiter mode {self.mode!r}; "
                             f"expected one of {_MODES}")
        if self.min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {self.min_limit}")
        if self.max_limit < self.min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not self.min_limit <= self.initial <= self.max_limit:
            raise ValueError(
                f"initial {self.initial} outside "
                f"[{self.min_limit}, {self.max_limit}]"
            )
        if self.target_latency_s <= 0:
            raise ValueError("target_latency_s must be positive")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        for name in ("short_alpha", "long_alpha", "smoothing"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {v!r}")


class AdaptiveConcurrencyLimit:
    """Latency-fed concurrency cap (see module docstring for the modes)."""

    def __init__(self, config: LimitConfig | None = None):
        self.config = config or LimitConfig()
        self._limit = float(self.config.initial)
        self._short: float | None = None
        self._long: float | None = None
        #: aimd: no further multiplicative decrease before this time.
        self._hold_until = float("-inf")
        #: Observation count (reporting).
        self.observations = 0

    @property
    def limit(self) -> int:
        """The current concurrency cap (integer, always >= min_limit)."""
        return int(self._limit)

    def observe(self, latency_s: float, now: float) -> None:
        """Feed one completed request's service latency."""
        if latency_s < 0:
            return
        self.observations += 1
        cfg = self.config
        if self._short is None:
            self._short = self._long = latency_s
        else:
            self._short += cfg.short_alpha * (latency_s - self._short)
            self._long += cfg.long_alpha * (latency_s - self._long)
        if cfg.mode == "aimd":
            if self._short <= cfg.target_latency_s:
                self._limit += cfg.increase / max(1.0, self._limit)
            elif now >= self._hold_until:
                self._limit *= cfg.decrease
                # One decrease per congestion window: requests admitted
                # before the cut drain over roughly the latency that
                # triggered it; their slowness is stale evidence.
                self._hold_until = now + max(latency_s, self._short)
        else:  # gradient
            gradient = max(0.5, min(1.1, self._long / max(self._short, 1e-12)))
            proposed = self._limit * gradient + math.sqrt(self._limit)
            self._limit += cfg.smoothing * (proposed - self._limit)
        self._limit = min(float(cfg.max_limit),
                          max(float(cfg.min_limit), self._limit))

    def snapshot(self) -> dict:
        return {
            "mode": self.config.mode,
            "limit": self.limit,
            "observations": self.observations,
        }
