"""Transport-neutral overload control: degrade gracefully, not collapse.

The paper's evaluation stops at the saturation knee; this package is
what the cluster does *past* it.  Three cooperating components, all
substrate-neutral the same way :class:`~repro.servers.DistributionPolicy`
is — the identical objects plug into the DES driver and the live
asyncio front-end:

* :class:`AdmissionController` — the front door.  A bounded accept
  queue on top of a concurrency cap, deadline-aware drop (reject a
  request whose *estimated* queue wait already exceeds its deadline),
  and priority classes that shed low-priority work first.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-back-end
  closed/open/half-open breakers with seeded probe timing, consulted by
  the routing redispatch so traffic flows around a node that keeps
  failing instead of piling onto it.
* :class:`AdaptiveConcurrencyLimit` — AIMD or gradient backpressure:
  the concurrency cap the admission controller enforces follows the
  observed service latency, so the front-end's appetite shrinks when
  the back-ends slow down.

Substrate neutrality is enforced structurally: no component stores a
clock or reads wall time — every method that needs "now" takes it as an
argument (simulated seconds from the DES, ``clock.now`` wall seconds in
:mod:`repro.live`).  simlint's REP108 conformance pass guards this: any
wall-clock read inside this package is a lint error.
"""

from .admission import AdmissionConfig, AdmissionController, AdmissionDecision
from .breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from .control import OverloadControl
from .limiter import AdaptiveConcurrencyLimit, LimitConfig

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdaptiveConcurrencyLimit",
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "LimitConfig",
    "OverloadControl",
]
