"""Per-back-end circuit breakers: stop hammering a node that keeps dying.

Classic three-state machine, one breaker per back-end node:

* **closed** — traffic flows; ``failure_threshold`` *consecutive*
  crash-type failures trip it open (load shedding is deliberately not a
  failure signal — that is the admission controller's regime, and
  counting sheds here would let an overloaded-but-healthy node get
  blackholed).
* **open** — traffic is refused until a seeded-jittered cooldown
  expires.  The jitter matters on both substrates: breakers tripped by
  the same event would otherwise probe in lockstep and re-trip in
  lockstep (a thundering herd of probes); the per-node seeded draw
  decorrelates them *deterministically*, so a sim run replays
  byte-identically.
* **half-open** — up to ``half_open_probes`` requests are let through
  as probes.  A probe success closes the breaker; a probe failure trips
  it open again with a fresh jittered cooldown.

Routing consults :meth:`BreakerBoard.routable` (pure, no state change)
so redispatch steers around open breakers without consuming probe
slots; the lifecycle's service-entry check calls :meth:`BreakerBoard.
allow` (mutating — this is where a half-open probe slot is claimed).

Substrate-neutral: time is an argument everywhere, randomness is a
per-node ``random.Random`` seeded at construction (simlint REP108).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["BreakerConfig", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs shared by every breaker on a board."""

    #: Consecutive crash-type failures that trip a closed breaker.
    failure_threshold: int = 5
    #: Base open duration before a probe is allowed.
    cooldown_s: float = 0.5
    #: Concurrent probe requests allowed in the half-open state.
    half_open_probes: int = 1
    #: Cooldown jitter as a fraction (each trip draws uniformly from
    #: ``cooldown_s * [1 - jitter, 1 + jitter]``), seeded per node.
    jitter: float = 0.2
    #: Board seed; each node derives its own RNG stream from it.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")


class CircuitBreaker:
    """One back-end's breaker (see module docstring for the states)."""

    def __init__(self, config: BreakerConfig, node_id: int = 0):
        self.config = config
        self.node_id = node_id
        self.state = CLOSED
        self._failures = 0
        self._probe_at = 0.0
        self._probes = 0
        self._rng = random.Random((config.seed << 16) ^ (node_id * 0x9E3779B1))
        #: Times this breaker tripped open (run-wide).
        self.trips = 0

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.trips += 1
        self._failures = 0
        self._probes = 0
        j = self.config.jitter
        factor = 1.0 + self._rng.uniform(-j, j) if j > 0 else 1.0
        self._probe_at = now + self.config.cooldown_s * factor

    def routable(self, now: float) -> bool:
        """Pure check: would a request sent now be allowed through?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return now >= self._probe_at
        return (
            self._probes < self.config.half_open_probes
            or now >= self._probe_at + self.config.cooldown_s
        )

    def allow(self, now: float) -> bool:
        """Service-entry check; claims a probe slot when half-open.

        While half-open, ``_probe_at`` is the instant the last probe
        slot was claimed.  A probe that never reports back (its client
        timed out, say) must not wedge the breaker half-open forever:
        after a full cooldown the stale slot is forfeited and re-offered.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now < self._probe_at:
                return False
            self.state = HALF_OPEN
            self._probes = 0
        if self._probes >= self.config.half_open_probes:
            if now < self._probe_at + self.config.cooldown_s:
                return False
            self._probes = 0
        self._probes += 1
        self._probe_at = now
        return True

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            # The probe came back: the node is serving again.
            self.state = CLOSED
            self._failures = 0
            self._probes = 0
        elif self.state == CLOSED:
            self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._trip(now)
        elif self.state == CLOSED:
            self._failures += 1
            if self._failures >= self.config.failure_threshold:
                self._trip(now)
        # OPEN: stragglers from before the trip add no information.


class BreakerBoard:
    """One breaker per node, addressed by node id."""

    def __init__(self, num_nodes: int, config: BreakerConfig | None = None):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.config = config or BreakerConfig()
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(self.config, node_id=i) for i in range(num_nodes)
        ]
        #: Requests refused at service entry (run-wide).
        self.rejections = 0

    def routable(self, node_id: int, now: float) -> bool:
        return self.breakers[node_id].routable(now)

    def allow(self, node_id: int, now: float) -> bool:
        ok = self.breakers[node_id].allow(now)
        if not ok:
            self.rejections += 1
        return ok

    def record_success(self, node_id: int, now: float) -> None:
        self.breakers[node_id].record_success(now)

    def record_failure(self, node_id: int, now: float) -> None:
        self.breakers[node_id].record_failure(now)

    def state(self, node_id: int) -> str:
        return self.breakers[node_id].state

    def states(self) -> str:
        """Compact per-node state string ("CCOH..."), for reports."""
        return "".join(b.state[0].upper() for b in self.breakers)

    @property
    def trips(self) -> int:
        return sum(b.trips for b in self.breakers)

    def snapshot(self) -> Dict[str, object]:
        return {
            "states": self.states(),
            "trips": self.trips,
            "rejections": self.rejections,
        }
