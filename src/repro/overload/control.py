"""The bundle one substrate run wires in: admission + breakers.

:class:`OverloadControl` is what the DES :class:`~repro.sim.driver.
Simulation` and the live :class:`~repro.live.frontend.FrontEnd` accept —
a fresh instance per run (like policy objects, binding is one-shot).
Either half may be ``None``: admission-only runs study shedding,
breaker-only runs study redispatch, and the default factory builds the
full stack with an AIMD limiter feeding the admission cap.
"""

from __future__ import annotations

from typing import Optional

from .admission import AdmissionConfig, AdmissionController
from .breaker import BreakerBoard, BreakerConfig
from .limiter import AdaptiveConcurrencyLimit, LimitConfig

__all__ = ["OverloadControl"]


class OverloadControl:
    """Overload-control components for one run (see module docstring)."""

    def __init__(
        self,
        admission: Optional[AdmissionController] = None,
        breakers: Optional[BreakerBoard] = None,
    ):
        if admission is None and breakers is None:
            raise ValueError(
                "OverloadControl needs an admission controller, a breaker "
                "board, or both"
            )
        self.admission = admission
        self.breakers = breakers

    @classmethod
    def default(
        cls,
        nodes: int,
        max_inflight: Optional[int] = None,
        queue_slots: int = 64,
        deadline_s: Optional[float] = None,
        classes: int = 1,
        limiter_mode: Optional[str] = "aimd",
        target_latency_s: float = 0.05,
        seed: int = 0,
    ) -> "OverloadControl":
        """The full stack: admission (+ limiter) and one breaker per node.

        ``limiter_mode=None`` pins the cap statically at ``max_inflight``
        (which is then required); otherwise the cap adapts from observed
        latency and ``max_inflight`` merely seeds the limiter's initial
        value when given.
        """
        limiter = None
        if limiter_mode is not None:
            initial = max_inflight if max_inflight is not None else 64
            limiter = AdaptiveConcurrencyLimit(
                LimitConfig(
                    mode=limiter_mode,
                    initial=initial,
                    max_limit=max(4096, initial),
                    target_latency_s=target_latency_s,
                )
            )
            max_inflight = None
        admission = AdmissionController(
            AdmissionConfig(
                max_inflight=max_inflight,
                queue_slots=queue_slots,
                deadline_s=deadline_s,
                classes=classes,
            ),
            limiter=limiter,
        )
        breakers = BreakerBoard(nodes, BreakerConfig(seed=seed))
        return cls(admission=admission, breakers=breakers)

    def snapshot(self) -> dict:
        out: dict = {}
        if self.admission is not None:
            out["admission"] = self.admission.snapshot()
        if self.breakers is not None:
            out["breakers"] = self.breakers.snapshot()
        return out
