"""repro — reproduction of *Evaluating Cluster-Based Network Servers*
(Carrera & Bianchini, HPDC 2000).

The package provides both instruments of the paper:

* :mod:`repro.model` — the analytic open M/M/1 queuing-network model
  bounding locality-oblivious and locality-conscious server throughput
  (figures 3–6 and the "model" curves of figures 7–10);
* :mod:`repro.sim` + :mod:`repro.cluster` + :mod:`repro.servers` — the
  detailed trace-driven simulator of the traditional, LARD, and L2S
  servers (figures 7–10 and the Section 5.2 analyses);
* :mod:`repro.workload` — Zipf workloads and Table-2 trace synthesis;
* :mod:`repro.des` — the discrete-event kernel underneath it all;
* :mod:`repro.experiments` — one entry point per paper table/figure.

Quickstart::

    from repro import run_simulation, model_bound_for_trace
    result = run_simulation("calgary", "l2s", nodes=16, num_requests=20_000)
    bound = model_bound_for_trace("calgary", nodes=16)
    print(result.throughput_rps, bound.throughput)
"""

from .cluster import Cluster, ClusterConfig
from .faults import AvailabilityTimeline, FaultSchedule, RetryPolicy
from .model import ModelParameters, compute_surfaces, throughput_increase
from .servers import (
    ConsistentHashPolicy,
    L2SPolicy,
    LARDPolicy,
    RoundRobinPolicy,
    TraditionalPolicy,
    make_policy,
)
from .sim import SimResult, Simulation, model_bound_for_trace, run_simulation
from .workload import Trace, synthesize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterConfig",
    "Cluster",
    "ModelParameters",
    "compute_surfaces",
    "throughput_increase",
    "TraditionalPolicy",
    "RoundRobinPolicy",
    "LARDPolicy",
    "L2SPolicy",
    "ConsistentHashPolicy",
    "make_policy",
    "FaultSchedule",
    "RetryPolicy",
    "AvailabilityTimeline",
    "Simulation",
    "SimResult",
    "run_simulation",
    "model_bound_for_trace",
    "Trace",
    "synthesize",
]
