"""Materialize a trace's file population onto disk for the back-ends.

The simulator's :class:`~repro.workload.filesets.FileSet` is just a size
vector; the live back-ends need actual files to read.  Only the files a
trace touches are written (a Zipf population's tail is mostly unvisited),
and by default they are *sparse* — ``truncate`` to the exact size without
writing data blocks — so even multi-hundred-MB footprints cost near-zero
disk.  Reads of sparse files return zeros at full speed, which is fine:
the experiment measures caching and distribution behaviour, not disk
media bandwidth.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..workload.traces import Trace

__all__ = ["file_name", "materialize_fileset", "load_manifest"]

MANIFEST_NAME = "manifest.json"


def file_name(file_id: int) -> str:
    """On-disk name for a file id (fixed width keeps listings sorted)."""
    return f"f{file_id:08d}.dat"


def materialize_fileset(
    trace: Trace,
    root: Union[str, Path],
    sparse: bool = True,
) -> Path:
    """Write every file the trace touches under ``root``; return ``root``.

    Also writes ``manifest.json`` mapping file id -> size so back-end
    processes can serve size metadata without re-reading the trace.
    Idempotent: existing files of the right size are left alone.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    sizes = trace.fileset.sizes
    touched = np.unique(trace.file_ids)
    manifest: Dict[str, int] = {}
    for fid in touched.tolist():
        size = int(sizes[fid])
        manifest[str(fid)] = size
        path = root / file_name(fid)
        if path.exists() and path.stat().st_size == size:
            continue
        with open(path, "wb") as fh:
            if sparse:
                fh.truncate(size)
            else:
                fh.write(b"\x00" * size)
    (root / MANIFEST_NAME).write_text(json.dumps(manifest))
    return root


def load_manifest(root: Union[str, Path]) -> Dict[int, int]:
    """Read ``manifest.json`` back as a ``{file_id: size_bytes}`` map."""
    raw = json.loads((Path(root) / MANIFEST_NAME).read_text())
    return {int(fid): int(size) for fid, size in raw.items()}
