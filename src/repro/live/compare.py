"""Run sim and live on the same point; report structural divergence.

The comparison deliberately scores *structural* metrics — cache hit
ratio and hand-off fraction — not absolute throughput.  The simulator
models 1999-era hardware (300 MHz CPUs, Table-1 service times); a
localhost asyncio cluster is a different machine entirely, so req/s
cannot agree and both numbers are reported side by side without a
threshold.  Hit ratio and hand-off fraction, by contrast, are decided
by the policy + LRU + trace interplay that both substrates share — if
they diverge beyond the thresholds, one of the two worlds has a bug.

Default thresholds are deliberately loose (±0.12 hit ratio, ±0.15
hand-off fraction): the live run's concurrency can reorder arrivals
within a multiprogramming window, which perturbs LRU state slightly
(see ``docs/LIVE.md`` for the full gap list).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..cluster import ClusterConfig
from ..servers import make_policy
from ..sim.driver import Simulation
from ..sim.results import SimResult
from ..workload.traces import Trace
from .cluster import LiveCluster, LiveClusterConfig
from .loadtest import LoadTestConfig, run_loadtest

__all__ = ["CompareReport", "run_compare"]

#: Default divergence thresholds (absolute deltas).
HIT_RATIO_THRESHOLD = 0.12
HANDOFF_THRESHOLD = 0.15


@dataclass(frozen=True)
class CompareReport:
    """Side-by-side sim-vs-live verdict for one configuration point."""

    sim: SimResult
    live: SimResult
    hit_ratio_threshold: float = HIT_RATIO_THRESHOLD
    handoff_threshold: float = HANDOFF_THRESHOLD
    problems: tuple = field(default_factory=tuple)
    #: When set (fault runs), availability is scored against this
    #: absolute-delta threshold; ``None`` = availability not compared
    #: (clean runs have availability 1.0 on both sides anyway).
    availability_threshold: Optional[float] = None
    #: When set (overload runs), the shed fraction — requests shed per
    #: request offered — is scored against this absolute-delta
    #: threshold.  Together with availability (which, on these books,
    #: *is* the goodput fraction: completions per offered request) this
    #: checks that both substrates degrade the same way, not merely
    #: that both degrade.
    shed_threshold: Optional[float] = None

    @property
    def hit_ratio_delta(self) -> float:
        """live - sim cluster-wide cache hit ratio."""
        return (1.0 - self.live.miss_rate) - (1.0 - self.sim.miss_rate)

    @property
    def handoff_delta(self) -> float:
        """live - sim hand-off (forwarded) fraction."""
        return self.live.forwarded_fraction - self.sim.forwarded_fraction

    @staticmethod
    def availability_of(result: SimResult) -> float:
        """Whole-run availability: 1 - failed/generated (1.0 if unknown)."""
        if result.requests_generated <= 0:
            return 1.0
        return 1.0 - result.requests_failed / result.requests_generated

    @property
    def sim_availability(self) -> float:
        return self.availability_of(self.sim)

    @property
    def live_availability(self) -> float:
        return self.availability_of(self.live)

    @property
    def availability_delta(self) -> float:
        """live - sim whole-run availability."""
        return self.live_availability - self.sim_availability

    @staticmethod
    def shed_fraction_of(result: SimResult) -> float:
        """Requests shed per request offered (0.0 if none generated)."""
        if result.requests_generated <= 0:
            return 0.0
        return result.requests_shed / result.requests_generated

    @property
    def sim_shed_fraction(self) -> float:
        return self.shed_fraction_of(self.sim)

    @property
    def live_shed_fraction(self) -> float:
        return self.shed_fraction_of(self.live)

    @property
    def shed_delta(self) -> float:
        """live - sim shed fraction."""
        return self.live_shed_fraction - self.sim_shed_fraction

    def within_thresholds(self) -> bool:
        if self.availability_threshold is not None and (
            abs(self.availability_delta) > self.availability_threshold
        ):
            return False
        if self.shed_threshold is not None and (
            abs(self.shed_delta) > self.shed_threshold
        ):
            return False
        return (
            abs(self.hit_ratio_delta) <= self.hit_ratio_threshold
            and abs(self.handoff_delta) <= self.handoff_threshold
            and not self.problems
        )

    def render(self) -> str:
        """Human-readable side-by-side report."""
        sim, live = self.sim, self.live

        def row(label: str, s: str, l: str, note: str = "") -> str:
            return f"  {label:<22s} {s:>12s} {l:>12s}  {note}"

        hit_ok = abs(self.hit_ratio_delta) <= self.hit_ratio_threshold
        fwd_ok = abs(self.handoff_delta) <= self.handoff_threshold
        lines = [
            f"sim vs live: policy={sim.policy} trace={sim.trace} "
            f"nodes={sim.nodes} cache={sim.cache_bytes // (1024 * 1024)}MB",
            row("metric", "sim", "live"),
            row(
                "cache hit ratio",
                f"{1.0 - sim.miss_rate:.3f}",
                f"{1.0 - live.miss_rate:.3f}",
                f"delta {self.hit_ratio_delta:+.3f} "
                f"(|x| <= {self.hit_ratio_threshold}) "
                f"{'OK' if hit_ok else 'DIVERGED'}",
            ),
            row(
                "hand-off fraction",
                f"{sim.forwarded_fraction:.3f}",
                f"{live.forwarded_fraction:.3f}",
                f"delta {self.handoff_delta:+.3f} "
                f"(|x| <= {self.handoff_threshold}) "
                f"{'OK' if fwd_ok else 'DIVERGED'}",
            ),
            *(
                [
                    row(
                        "availability",
                        f"{self.sim_availability:.3f}",
                        f"{self.live_availability:.3f}",
                        f"delta {self.availability_delta:+.3f} "
                        f"(|x| <= {self.availability_threshold}) "
                        + (
                            "OK"
                            if abs(self.availability_delta)
                            <= self.availability_threshold
                            else "DIVERGED"
                        ),
                    )
                ]
                if self.availability_threshold is not None
                else []
            ),
            *(
                [
                    row(
                        "shed fraction",
                        f"{self.sim_shed_fraction:.3f}",
                        f"{self.live_shed_fraction:.3f}",
                        f"delta {self.shed_delta:+.3f} "
                        f"(|x| <= {self.shed_threshold}) "
                        + (
                            "OK"
                            if abs(self.shed_delta) <= self.shed_threshold
                            else "DIVERGED"
                        ),
                    )
                ]
                if self.shed_threshold is not None
                else []
            ),
            row(
                "throughput (req/s)",
                f"{sim.throughput_rps:.1f}",
                f"{live.throughput_rps:.1f}",
                "informational (different hardware)",
            ),
            row(
                "msgs per request",
                f"{sim.messages_per_request:.2f}",
                f"{live.messages_per_request:.2f}",
                "informational",
            ),
            *(
                row(
                    f"latency {key} (s)",
                    (
                        f"{sim.latency_percentiles[key]:.4f}"
                        if key in sim.latency_percentiles else "-"
                    ),
                    (
                        f"{live.latency_percentiles[key]:.4f}"
                        if key in live.latency_percentiles else "-"
                    ),
                    "informational (different hardware)",
                )
                for key in ("p50", "p95", "p99")
                if key in sim.latency_percentiles
                or key in live.latency_percentiles
            ),
            row(
                "requests measured",
                str(sim.requests_measured),
                str(live.requests_measured),
            ),
        ]
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        lines.append(
            "verdict: "
            + ("WITHIN THRESHOLDS" if self.within_thresholds() else "DIVERGED")
        )
        return "\n".join(lines)


def run_compare(
    trace: Trace,
    policy_name: str,
    nodes: int = 4,
    cache_bytes: int = 32 * 1024 * 1024,
    passes: int = 2,
    concurrency: int = 16,
    backend_mode: str = "process",
    root: Optional[Path] = None,
    hit_ratio_threshold: float = HIT_RATIO_THRESHOLD,
    handoff_threshold: float = HANDOFF_THRESHOLD,
    **policy_kwargs,
) -> CompareReport:
    """Run the sim and the live cluster on one point; return the report.

    Each substrate gets its *own* policy instance (binding is one-shot),
    both built by :func:`repro.servers.make_policy` with identical
    arguments, and both replay the identical ``Trace.replay_ids(passes)``
    arrival sequence.  The sim's multiprogramming level is set from the
    loadtest ``concurrency`` so both worlds run at the same nominal load
    — load-aware policies (L2S's overload thresholds) otherwise compare
    different operating points.
    """
    sim = Simulation(
        trace,
        make_policy(policy_name, **policy_kwargs),
        ClusterConfig(
            nodes=nodes,
            cache_bytes=cache_bytes,
            multiprogramming_per_node=max(1, concurrency // nodes),
        ),
        passes=passes,
        record_latencies=True,
    ).run()
    live = asyncio.run(
        _run_live(
            trace,
            make_policy(policy_name, **policy_kwargs),
            nodes,
            cache_bytes,
            passes,
            concurrency,
            backend_mode,
            root,
        )
    )
    problems = tuple(live.verify())
    return CompareReport(
        sim=sim,
        live=live,
        hit_ratio_threshold=hit_ratio_threshold,
        handoff_threshold=handoff_threshold,
        problems=problems,
    )


async def _run_live(
    trace, policy, nodes, cache_bytes, passes, concurrency, backend_mode, root
):
    import tempfile

    if root is None:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
            return await _boot_and_replay(
                trace, policy, nodes, cache_bytes, passes, concurrency,
                backend_mode, Path(tmp),
            )
    return await _boot_and_replay(
        trace, policy, nodes, cache_bytes, passes, concurrency,
        backend_mode, Path(root),
    )


async def _boot_and_replay(
    trace, policy, nodes, cache_bytes, passes, concurrency, backend_mode, root
) -> SimResult:
    cluster = LiveCluster(
        policy,
        trace,
        LiveClusterConfig(
            nodes=nodes,
            cache_bytes=cache_bytes,
            backend_mode=backend_mode,
            root=root,
        ),
    )
    await cluster.start()
    try:
        return await run_loadtest(
            cluster,
            trace,
            LoadTestConfig(concurrency=concurrency, passes=passes),
        )
    finally:
        await cluster.stop()
