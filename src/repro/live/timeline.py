"""Live availability timeline: the DES instrument on a wall clock.

Reuses :class:`~repro.faults.timeline.TimelineBase` — the same window
counters, sample rows, CSV columns, and ASCII render as the simulator's
:class:`~repro.faults.timeline.AvailabilityTimeline` — but sampled by an
asyncio task against wall seconds (relative to :meth:`start`, so a live
run's curve and a sim run's curve share a t=0 origin).

The loadtest records completions/failures/sheds as the *client* observes
them, the front-end records retries, and the
:class:`~repro.live.faultproxy.LiveFaultInjector` annotates executed
fault actions — giving ``repro live chaos`` the same outage-dip /
retry-storm / reheat-transient picture the sim reports produce, from the
same rendering code.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..faults.timeline import TimelineBase, TimelineSample

__all__ = ["LiveAvailabilityTimeline"]


class LiveAvailabilityTimeline(TimelineBase):
    """Sampled availability instrument for one live run."""

    def __init__(self, cluster, interval_s: float = 0.25):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        super().__init__()
        self.cluster = cluster
        self.interval_s = interval_s
        self._t0: Optional[float] = None
        self._task: Optional[asyncio.Task] = None

    def _now(self) -> float:
        assert self._t0 is not None, "timeline not started"
        return time.monotonic() - self._t0

    # -- driver hooks -------------------------------------------------------

    def mark_event(self, kind: str, node: int) -> None:
        """Annotate an executed fault action at the current wall offset."""
        self.events.append((self._now(), kind, node))

    # -- sampling -----------------------------------------------------------

    def start(self) -> None:
        assert self._task is None, "timeline already started"
        self._t0 = time.monotonic()
        self._last_t = 0.0
        self._task = asyncio.get_running_loop().create_task(self._sampler())

    async def stop(self) -> None:
        """Stop sampling; the final partial window is still recorded."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._t0 is not None and self._now() > self._last_t:
            self.take_sample()

    async def _sampler(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            self.take_sample()

    def take_sample(self) -> TimelineSample:
        """Close the current window and append its row."""
        membership = self.cluster.engine.membership
        monitor = self.cluster.monitor
        states = []
        for node in membership.nodes:
            if monitor is not None and not monitor.is_up(node.id):
                states.append("D")
            else:
                states.append("U")
        return self._close_window(
            self._now(),
            open_connections=sum(
                n.open_connections for n in membership.nodes
            ),
            node_states="".join(states),
        )
