"""Minimal hand-rolled HTTP/1.1 over asyncio streams.

The paper's servers (and the systems they model — Flash, LARD's
front-end) speak hand-written HTTP over non-blocking sockets; the live
cluster does the same rather than pulling in an HTTP framework.  Only
the slice of HTTP/1.1 the cluster needs is implemented: request line +
headers, ``Content-Length``-framed bodies, one request per connection
(``Connection: close``), mirroring the simulator's HTTP/1.0-style
connection-per-request accounting.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
]

#: Upper bound on request-line + header bytes (hostile-input guard).
MAX_HEAD_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Malformed or oversized HTTP traffic."""


@dataclass
class Request:
    """One parsed HTTP request (headers lower-cased)."""

    method: str
    path: str
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class Response:
    """One parsed HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read up to the blank line ending the head; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError("connection closed mid-head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError("head exceeds stream limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise HTTPError("head too large")
    return head


def _parse_headers(lines: list) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` when the peer closed before sending."""
    head = await _read_head(reader)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise HTTPError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(f"unsupported protocol {version!r}")
    headers = _parse_headers(lines[1:])
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=path,
        version=version,
        headers=headers,
        body=body,
    )


async def read_response(reader: asyncio.StreamReader) -> Response:
    """Parse one response, reading its ``Content-Length`` body fully."""
    head = await _read_head(reader)
    if head is None:
        raise HTTPError("peer closed before responding")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HTTPError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HTTPError(f"malformed status code {parts[1]!r}") from None
    headers = _parse_headers(lines[1:])
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return Response(status=status, headers=headers, body=body)


def render_request(
    method: str,
    path: str,
    headers: Optional[Dict[str, str]] = None,
    body: bytes = b"",
) -> bytes:
    """Serialize a request; bodies are ``Content-Length``-framed."""
    out = [f"{method} {path} HTTP/1.1"]
    for name, value in (headers or {}).items():
        out.append(f"{name}: {value}")
    if body:
        out.append(f"Content-Length: {len(body)}")
    out.append("Connection: close")
    out.append("")
    out.append("")
    return "\r\n".join(out).encode("latin-1") + body


def render_response(
    status: int, body: bytes = b"", headers: Optional[Dict[str, str]] = None
) -> bytes:
    """Serialize a response with an exact ``Content-Length`` frame."""
    reason = _REASONS.get(status, "Unknown")
    out = [f"HTTP/1.1 {status} {reason}"]
    for name, value in (headers or {}).items():
        out.append(f"{name}: {value}")
    out.append(f"Content-Length: {len(body)}")
    out.append("Connection: close")
    out.append("")
    out.append("")
    return "\r\n".join(out).encode("latin-1") + body
