"""The live front-end: HTTP/1.1 in, PolicyEngine routing, back-ends out.

One ``asyncio.start_server`` accept loop parses each client request
(``GET /f/<fid>``), assigns it the next arrival index, and asks the
:class:`~repro.live.engine.PolicyEngine` where it goes — the same
``initial_node``/``decide`` calls, in the same order, as the simulator's
request lifecycle.

Dispatch mirrors the simulator's hand-off model with real sockets:

* not forwarded — fetch directly from the target back-end;
* forwarded — fetch from the *initial* back-end with an
  ``X-Forward-Port`` header naming the target, so the initial node opens
  the second TCP connection and relays the bytes.  The forwarding work
  and extra hop land on the initial node, the cache work on the target,
  exactly as the sim charges them.

The engine's ``connection_opened``/``request_completed`` bracketing
reproduces the sim's open-connection accounting, which is what the
fewest-connections and L2S policies feed on.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..servers import ServiceUnavailable
from . import http11
from .engine import PolicyEngine, RouteOutcome

__all__ = ["FrontEnd"]


class FrontEnd:
    """Accepts client requests and routes them through the engine."""

    def __init__(
        self,
        engine: PolicyEngine,
        backend_ports: List[int],
        host: str = "127.0.0.1",
    ) -> None:
        if len(backend_ports) != engine.num_nodes:
            raise ValueError(
                f"engine expects {engine.num_nodes} nodes, "
                f"got {len(backend_ports)} backend ports"
            )
        self.engine = engine
        self.backend_ports = list(backend_ports)
        self.host = host
        self._arrival = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.handoffs = 0

    @property
    def port(self) -> int:
        assert self._server is not None, "frontend not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def reset_meters(self) -> None:
        """Warmup boundary: zero front-end counters (arrival index keeps
        counting — the policies' round-robin state must not rewind)."""
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.handoffs = 0

    # -- client connection handling ---------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await http11.read_request(reader)
            if request is None:
                return
            response = await self._serve(request)
            writer.write(response)
            await writer.drain()
        except (http11.HTTPError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve(self, request: http11.Request) -> bytes:
        if request.method != "GET" or not request.path.startswith("/f/"):
            return http11.render_response(404, b"not found")
        try:
            fid = int(request.path[len("/f/"):])
        except ValueError:
            return http11.render_response(400, b"bad file id")
        index = self._arrival
        self._arrival += 1
        self.requests += 1
        try:
            outcome = self.engine.route(index, fid)
        except ServiceUnavailable:
            self.failed += 1
            return http11.render_response(503, b"service unavailable")
        return await self._dispatch(outcome)

    async def _dispatch(self, outcome: RouteOutcome) -> bytes:
        """Fetch through the back-ends per the routing outcome."""
        fetch_node = outcome.initial if outcome.forwarded else outcome.target
        headers: Dict[str, str] = {}
        if outcome.forwarded:
            headers["X-Forward-Port"] = str(self.backend_ports[outcome.target])
            self.handoffs += 1
        self.engine.connection_opened(outcome.target)
        opened = True
        try:
            response = await self._fetch(
                self.backend_ports[fetch_node], outcome.file_id, headers
            )
        except (ConnectionError, OSError, http11.HTTPError, asyncio.IncompleteReadError):
            if outcome.forwarded:
                self.engine.handoff_failed(outcome.initial, outcome.target)
            self.engine.request_aborted(
                outcome.initial, opened=opened, target=outcome.target
            )
            self.failed += 1
            return http11.render_response(502, b"backend unreachable")
        if response.status != 200:
            self.engine.request_aborted(
                outcome.initial, opened=opened, target=outcome.target
            )
            self.failed += 1
            return http11.render_response(response.status, response.body)
        self.engine.request_completed(outcome.target, outcome.file_id)
        self.completed += 1
        relay_headers = {
            "X-Cache": response.headers.get("x-cache", "MISS"),
            "X-Node": response.headers.get("x-node", "?"),
        }
        if outcome.forwarded:
            relay_headers["X-Handoff"] = "1"
        return http11.render_response(200, response.body, relay_headers)

    async def _fetch(
        self, port: int, fid: int, headers: Dict[str, str]
    ) -> http11.Response:
        reader, writer = await asyncio.open_connection(self.host, port)
        try:
            writer.write(http11.render_request("GET", f"/f/{fid}", headers))
            await writer.drain()
            return await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
