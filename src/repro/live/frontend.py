"""The live front-end: HTTP/1.1 in, PolicyEngine routing, back-ends out.

One ``asyncio.start_server`` accept loop parses each client request
(``GET /f/<fid>``), assigns it the next arrival index, and asks the
:class:`~repro.live.engine.PolicyEngine` where it goes — the same
``initial_node``/``decide`` calls, in the same order, as the simulator's
request lifecycle.

Dispatch mirrors the simulator's hand-off model with real sockets:

* not forwarded — fetch directly from the target back-end;
* forwarded — fetch from the *initial* back-end with an
  ``X-Forward-Port`` header naming the target, so the initial node opens
  the second TCP connection and relays the bytes.  The forwarding work
  and extra hop land on the initial node, the cache work on the target,
  exactly as the sim charges them.

The engine's ``connection_opened``/``request_completed`` bracketing
reproduces the sim's open-connection accounting, which is what the
fewest-connections and L2S policies feed on.

Resilience (mirrors the sim driver's fault paths — see docs/LIVE.md):

* every back-end fetch runs under a per-attempt timeout;
* a transport failure or timeout aborts the attempt through the sim's
  exact hook order (``handoff_failed`` → ``request_aborted``), tells the
  :class:`~repro.live.faultproxy.HealthMonitor` to suspect the node,
  then **re-routes** the request — a fresh ``route()`` call, so the
  policy redispatches around nodes marked down in the meantime — after
  the :class:`~repro.faults.schedule.RetryPolicy` capped backoff, until
  the retry budget is spent (the sim's client re-issue semantics);
* non-200 responses are terminal, never retried (a logical error is not
  a fault);
* when fewer than ``min_healthy`` back-ends are up, new requests are
  shed with a 503 tagged ``X-Shed: 1`` before touching the policy —
  graceful degradation the client accounts as failed *and* shed,
  keeping the ``SimResult`` conservation identity intact.

Overload control (``overload=`` an :class:`~repro.overload.
OverloadControl`, see docs/OVERLOAD.md): the ad-hoc ``min_healthy``
shed above is subsumed by the *same* :class:`~repro.overload.
AdmissionController` object model the DES driver uses (health feeds in
as its ``capacity_ok`` input), dispatch attempts pass through the
per-back-end circuit breakers, and completed-request latencies drive
the adaptive concurrency limit — byte-identical control logic on both
substrates, only the clock and transport differ.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from ..servers import ServiceUnavailable
from . import http11
from .engine import PolicyEngine, RouteOutcome
from .faultproxy import HealthMonitor, ResilienceConfig

__all__ = ["FrontEnd"]


class FrontEnd:
    """Accepts client requests and routes them through the engine."""

    def __init__(
        self,
        engine: PolicyEngine,
        backend_ports: List[int],
        host: str = "127.0.0.1",
        monitor: Optional[HealthMonitor] = None,
        resilience: Optional[ResilienceConfig] = None,
        overload=None,
    ) -> None:
        if len(backend_ports) != engine.num_nodes:
            raise ValueError(
                f"engine expects {engine.num_nodes} nodes, "
                f"got {len(backend_ports)} backend ports"
            )
        self.engine = engine
        self.backend_ports = list(backend_ports)
        self.host = host
        self.monitor = monitor
        self.resilience = resilience or ResilienceConfig()
        #: :class:`~repro.overload.OverloadControl` for this run, or
        #: ``None``.  The *same object model* the DES driver wires in:
        #: the admission controller replaces the ad-hoc ``min_healthy``
        #: shed (which feeds in as its ``capacity_ok`` input), and the
        #: breaker board gates dispatch attempts and steers routing.
        self.overload = overload
        if overload is not None and overload.breakers is not None:
            engine.policy.attach_breakers(overload.breakers)
        #: Optional timeline instrument; when set, retries are recorded
        #: onto it (completions/failures are recorded client-side).
        self.timeline = None
        self._arrival = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.handoffs = 0
        # Run-wide resilience counters (NOT zeroed at the warmup
        # boundary — the sim's requests_retried/requests_shed are
        # likewise whole-run totals).
        self.retried = 0
        self.shed = 0
        self.timeouts = 0

    @property
    def port(self) -> int:
        assert self._server is not None, "frontend not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def reset_meters(self) -> None:
        """Warmup boundary: zero front-end counters (arrival index keeps
        counting — the policies' round-robin state must not rewind; the
        retried/shed/timeouts totals stay run-wide like the sim's)."""
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.handoffs = 0

    # -- client connection handling ---------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await http11.read_request(reader)
            if request is None:
                return
            response = await self._serve(request)
            writer.write(response)
            await writer.drain()
        except (http11.HTTPError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve(self, request: http11.Request) -> bytes:
        if request.method != "GET" or not request.path.startswith("/f/"):
            return http11.render_response(404, b"not found")
        try:
            fid = int(request.path[len("/f/"):])
        except ValueError:
            return http11.render_response(400, b"bad file id")
        index = self._arrival
        self._arrival += 1
        self.requests += 1
        healthy_ok = not (
            self.monitor is not None
            and self.monitor.healthy_count() < self.resilience.min_healthy
        )
        admission = self.overload.admission if self.overload is not None else None
        if admission is None:
            if not healthy_ok:
                # Admission shedding (ad-hoc form, no OverloadControl
                # attached): the cluster cannot serve anything useful,
                # so reject up front instead of queueing the request
                # onto dead back-ends.  The client counts this as failed
                # (conservation) and shed (the graceful-degradation
                # sub-counter), same split as the sim's admission control.
                self.shed += 1
                self.failed += 1
                return http11.render_response(
                    503, b"shedding load", {"X-Shed": "1"}
                )
            _, response = await self._dispatch(index, fid)
            return response
        # Unified admission control: the identical AdmissionController
        # object model the DES driver gates its front door with (see
        # docs/OVERLOAD.md).  The min_healthy health check feeds in as
        # capacity_ok so "cluster cannot serve" sheds flow through the
        # same books as queue-full and deadline sheds.
        verdict = admission.try_admit(
            self.engine.clock.now, capacity_ok=healthy_ok
        )
        if not verdict.admitted:
            self.shed += 1
            self.failed += 1
            return http11.render_response(
                503, b"shedding load", {"X-Shed": "1"}
            )
        start = self.engine.clock.now
        ok = False
        try:
            ok, response = await self._dispatch(index, fid)
            return response
        finally:
            # Always release the admission slot (even on cancellation);
            # only a completed request's latency feeds the limiter.
            end = self.engine.clock.now
            admission.release(end, (end - start) if ok else None)

    async def _dispatch(self, index: int, fid: int) -> Tuple[bool, bytes]:
        """Route + fetch with retries; True iff a 200 completed."""
        breakers = self.overload.breakers if self.overload is not None else None
        retry = self.resilience.retry
        attempt = 0
        while True:
            try:
                outcome = self.engine.route(index, fid)
            except ServiceUnavailable:
                self.failed += 1
                return False, http11.render_response(503, b"service unavailable")
            if breakers is None or breakers.allow(
                outcome.target, self.engine.clock.now
            ):
                result = await self._attempt(outcome)
                if result is not None:
                    ok, response = result
                    if breakers is not None:
                        # Any response is liveness (a non-200 is a
                        # logical error, not a crash signal).
                        breakers.record_success(
                            outcome.target, self.engine.clock.now
                        )
                    return ok, response
                if breakers is not None:
                    breakers.record_failure(
                        outcome.target, self.engine.clock.now
                    )
                if self.monitor is not None:
                    # A transport failure implicates the *service target*:
                    # for a direct fetch that is the node we dialed; for a
                    # hand-off the local relay leg to the initial node is
                    # healthy localhost TCP, so the broken leg is almost
                    # always initial->target.  Suspecting the initial node
                    # instead would mark down LARD's front-end on every
                    # failed relay — a self-inflicted total outage.  A rare
                    # misattribution (the initial node itself died) is
                    # corrected by the next probe sweep.
                    self.monitor.suspect(outcome.target)
            else:
                # The target's breaker refused at the service door: roll
                # back the decide-time view charge like the sim's breaker
                # shed, count it on the shed books, and re-route after
                # backoff (breaker-aware routing steers the fresh
                # route() around open breakers).
                self.engine.handoff_failed(outcome.initial, outcome.target)
                self.engine.request_aborted(
                    outcome.initial, opened=False, target=outcome.target
                )
                self.shed += 1
                if self.timeline is not None:
                    self.timeline.record_shed()
            if attempt >= retry.max_retries:
                self.failed += 1
                return False, http11.render_response(502, b"backend unreachable")
            attempt += 1
            self.retried += 1
            if self.timeline is not None:
                self.timeline.record_retry()
            # Sim client re-issue semantics: capped-exponential pause,
            # then a *fresh* route() — incarnation-aware redispatch
            # happens because the monitor's mark-down landed between
            # attempts and the policy no longer offers the dead node.
            await asyncio.sleep(retry.backoff(attempt))

    async def _attempt(
        self, outcome: RouteOutcome
    ) -> Optional[Tuple[bool, bytes]]:
        """One dispatch attempt: ``None`` means retryable transport
        failure, otherwise ``(completed_200, rendered_response)``."""
        fetch_node = outcome.initial if outcome.forwarded else outcome.target
        headers: Dict[str, str] = {}
        if outcome.forwarded:
            headers["X-Forward-Port"] = str(self.backend_ports[outcome.target])
            self.handoffs += 1
        self.engine.connection_opened(outcome.target)
        try:
            response = await asyncio.wait_for(
                self._fetch(
                    self.backend_ports[fetch_node], outcome.file_id, headers
                ),
                timeout=self.resilience.request_timeout_s,
            )
        except asyncio.TimeoutError:
            self.timeouts += 1
            self._abort(outcome)
            return None
        except (ConnectionError, OSError, http11.HTTPError,
                asyncio.IncompleteReadError):
            self._abort(outcome)
            return None
        if response.status != 200:
            self.engine.request_aborted(
                outcome.initial, opened=True, target=outcome.target
            )
            self.failed += 1
            return False, http11.render_response(response.status, response.body)
        self.engine.request_completed(outcome.target, outcome.file_id)
        self.completed += 1
        relay_headers = {
            "X-Cache": response.headers.get("x-cache", "MISS"),
            "X-Node": response.headers.get("x-node", "?"),
        }
        if outcome.forwarded:
            relay_headers["X-Handoff"] = "1"
        return True, http11.render_response(200, response.body, relay_headers)

    def _abort(self, outcome: RouteOutcome) -> None:
        """Transport-failure bookkeeping, in the sim's hook order."""
        if outcome.forwarded:
            self.engine.handoff_failed(outcome.initial, outcome.target)
        self.engine.request_aborted(
            outcome.initial, opened=True, target=outcome.target
        )

    async def _fetch(
        self, port: int, fid: int, headers: Dict[str, str]
    ) -> http11.Response:
        reader, writer = await asyncio.open_connection(self.host, port)
        try:
            writer.write(http11.render_request("GET", f"/f/{fid}", headers))
            await writer.drain()
            return await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
