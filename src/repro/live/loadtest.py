"""Replay a trace against a live cluster; emit a ``SimResult``.

The loadtest drives the *identical* arrival sequence the simulation
driver injects — both sides consume :meth:`repro.workload.Trace.replay_ids`
(the parity tests pin this) — as a closed-loop client pool with a fixed
multiprogramming level, mirroring the paper's saturation methodology.

Warmup follows the sim's ``passes`` semantics: with ``passes > 1`` the
first ``passes - 1`` trace replays warm the caches and policy state,
then every meter (engine, front-end, back-end caches) is reset and the
final pass is measured.  One honest difference from the DES, documented
in ``docs/LIVE.md``: the live warmup boundary *drains* in-flight
requests before resetting meters (a running TCP transfer cannot be
retroactively reassigned to the measured window), whereas the simulator
resets mid-flight.  For the structural metrics compared (hit ratio,
hand-off fraction) the drain is invisible.

The result is a genuine :class:`~repro.sim.results.SimResult` — same
fields, same conservation identity (``verify()`` passes) — so every
existing report/compare path consumes live runs unchanged.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..sim.results import SimResult
from ..workload.traces import Trace
from . import http11
from .cluster import LiveCluster

__all__ = ["LoadTestConfig", "Replay", "run_loadtest"]


@dataclass
class LoadTestConfig:
    """Client-side shape of a live replay."""

    #: Closed-loop multiprogramming level (simultaneous clients).
    concurrency: int = 16
    #: Trace replays; first ``passes - 1`` are warmup (sim semantics).
    passes: int = 2
    #: With ``passes == 1``: fraction of requests treated as warmup.
    warmup_fraction: float = 0.3
    #: Open-loop mode: measured-pass Poisson arrivals at this rate
    #: (req/s) instead of the closed-loop window.  ``None`` = closed loop.
    arrival_rate: Optional[float] = None
    #: Seed for the open-loop arrival process.
    seed: int = 0
    #: Per-request client timeout, seconds.
    request_timeout_s: float = 30.0
    #: Zero-time cache prewarm (every back-end replays the trace once
    #: before the run).  ``None`` = the sim's default: only for the
    #: strictly-local policies, where each cache sees the whole stream.
    prewarm: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.passes < 1:
            raise ValueError(f"passes must be >= 1, got {self.passes}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")


class Replay:
    """One loadtest run against an already-started cluster.

    Public because the live chaos bridge drives it directly: it wires a
    timeline onto :attr:`timeline` and hands :meth:`progress` to the
    :class:`~repro.live.faultproxy.LiveFaultInjector` as the fault
    trigger (faults fire at workload-progress fractions, matching how
    the sim schedules them inside the horizon).
    """

    def __init__(self, cluster: LiveCluster, trace: Trace, config: LoadTestConfig):
        self.cluster = cluster
        self.trace = trace
        self.config = config
        self.ids = trace.replay_ids(config.passes)
        self.total = int(self.ids.size)
        if config.passes > 1:
            self.warmup_count = len(trace) * (config.passes - 1)
        else:
            self.warmup_count = int(self.total * config.warmup_fraction)
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self.failed_warmup = 0
        #: Client-observed shed responses (503 + ``X-Shed``), run-wide.
        #: Each one is *also* counted in ``failed`` — shed is a
        #: sub-counter, not a third conservation bucket, exactly like
        #: the sim's ``requests_shed``.
        self.shed = 0
        #: Requests that hit the client-side ``request_timeout_s``.
        #: Counted as failed (the client gave up; whatever the cluster
        #: eventually does with the socket no longer matters), so the
        #: conservation identity still balances under faults.
        self.timed_out = 0
        self.client_hits = 0
        self.client_handoffs = 0
        self.latencies: List[float] = []
        self.measuring = False
        #: Optional LiveAvailabilityTimeline recording this run.
        self.timeline = None

    def progress(self) -> float:
        """Fraction of the whole replay (warmup included) finished."""
        return (self.completed + self.failed) / self.total if self.total else 1.0

    async def run(self) -> SimResult:
        host = self.cluster.config.host
        port = self.cluster.frontend_port

        prewarm = self.config.prewarm
        if prewarm is None:
            # Match Simulation's default: zero-time prewarm is exactly
            # right only for strictly-local policies.
            prewarm = self.cluster.engine.policy.name in (
                "traditional",
                "round-robin",
            )
        if prewarm:
            await self.cluster.prewarm(self.trace.file_ids)

        # Phase 1: warmup — closed-loop, then drain (see module docstring).
        if self.warmup_count:
            await self._closed_loop(host, port, self.warmup_count)
            self.failed_warmup = self.failed
        await self.cluster.reset_meters()

        # Phase 2: the measured window.
        self.measuring = True
        t0 = time.monotonic()
        if self.config.arrival_rate is None:
            await self._closed_loop(host, port, self.total)
        else:
            await self._open_loop(host, port, self.total)
        elapsed = time.monotonic() - t0
        return await self._build_result(elapsed)

    async def _closed_loop(self, host: str, port: int, limit: int) -> None:
        """``concurrency`` workers each: take the next index, run it."""

        async def worker() -> None:
            while True:
                i = self.issued
                if i >= limit:
                    return
                self.issued += 1
                await self._one_request(host, port, i)

        workers = min(self.config.concurrency, max(1, limit - self.issued))
        await asyncio.gather(*(worker() for _ in range(workers)))

    async def _open_loop(self, host: str, port: int, limit: int) -> None:
        """Poisson arrivals: spawn each request at its scheduled offset."""
        rng = np.random.default_rng(self.config.seed)
        mean_gap = 1.0 / float(self.config.arrival_rate)
        tasks = []
        while self.issued < limit:
            i = self.issued
            self.issued += 1
            tasks.append(asyncio.ensure_future(self._one_request(host, port, i)))
            await asyncio.sleep(float(rng.exponential(mean_gap)))
        await asyncio.gather(*tasks)

    async def _one_request(self, host: str, port: int, i: int) -> None:
        fid = int(self.ids[i])
        start = time.monotonic()
        try:
            response = await asyncio.wait_for(
                self._fetch(host, port, fid),
                timeout=self.config.request_timeout_s,
            )
        except asyncio.TimeoutError:
            # The client's patience ran out: record a failed request and
            # move on — the replay must survive faulted back-ends, and
            # conservation counts what the *client* observed.
            self.timed_out += 1
            self.failed += 1
            if self.timeline is not None:
                self.timeline.record_failure()
            return
        except (ConnectionError, OSError, http11.HTTPError):
            self.failed += 1
            if self.timeline is not None:
                self.timeline.record_failure()
            return
        if response.status != 200:
            self.failed += 1
            if response.headers.get("x-shed") == "1":
                self.shed += 1
                if self.timeline is not None:
                    self.timeline.record_shed()
            if self.timeline is not None:
                self.timeline.record_failure()
            return
        self.completed += 1
        if self.timeline is not None:
            self.timeline.record_completion(
                was_miss=response.headers.get("x-cache") != "HIT"
            )
        if self.measuring:
            self.latencies.append(time.monotonic() - start)
            if response.headers.get("x-cache") == "HIT":
                self.client_hits += 1
            if response.headers.get("x-handoff") == "1":
                self.client_handoffs += 1

    async def _fetch(self, host: str, port: int, fid: int) -> http11.Response:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(http11.render_request("GET", f"/f/{fid}"))
            await writer.drain()
            return await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _build_result(self, elapsed: float) -> SimResult:
        engine = self.cluster.engine
        backends = await self.cluster.backend_stats()
        hits = sum(b["cache_hits"] for b in backends)
        misses = sum(b["cache_misses"] for b in backends)
        lookups = hits + misses
        measured = self.completed - (self.warmup_count - self.failed_warmup)
        # Engine counters were reset at the boundary, so they cover
        # exactly the measured window.
        stats = engine.stats()
        control = stats["control_messages"]
        handoffs = sum(b["relayed"] for b in backends)
        return SimResult(
            policy=engine.policy.name,
            trace=self.trace.name,
            nodes=self.cluster.config.nodes,
            cache_bytes=self.cluster.config.cache_bytes,
            requests_measured=measured,
            requests_warmup=self.warmup_count,
            sim_seconds=elapsed,
            throughput_rps=measured / elapsed if elapsed > 0 else 0.0,
            miss_rate=misses / lookups if lookups else 0.0,
            forwarded_fraction=(
                stats["forwarded"] / stats["routed"] if stats["routed"] else 0.0
            ),
            cpu_utilizations=[],
            mean_response_s=(
                float(np.mean(self.latencies)) if self.latencies else 0.0
            ),
            messages_per_request=(
                (control + handoffs) / measured if measured else 0.0
            ),
            node_completions=[b["served"] for b in backends],
            policy_stats=stats["policy"],
            requests_failed=self.failed,
            requests_retried=getattr(
                self.cluster.frontend, "retried", 0
            ) if self.cluster.frontend is not None else 0,
            requests_shed=self.shed,
            latency_percentiles=self._percentiles(),
            requests_generated=self.issued,
            requests_failed_warmup=self.failed_warmup,
            netfault_summary={
                "live": {
                    "client_timeouts": self.timed_out,
                    **self.cluster.live_summary(),
                }
            },
        )

    def _percentiles(self) -> Dict[str, float]:
        if not self.latencies:
            return {}
        lat = np.asarray(self.latencies)
        return {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        }


async def run_loadtest(
    cluster: LiveCluster,
    trace: Trace,
    config: Optional[LoadTestConfig] = None,
) -> SimResult:
    """Replay ``trace`` against a started ``cluster``; return the result."""
    return await Replay(cluster, trace, config or LoadTestConfig()).run()


# Backward-compatible alias (pre-chaos private name).
_Replay = Replay
