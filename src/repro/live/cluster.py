"""Boot and tear down a complete localhost cluster.

:class:`LiveCluster` owns the whole stack: it materializes the trace's
file set, starts one back-end per node (real subprocesses by default,
in-process servers for hermetic tests), builds the
:class:`~repro.live.engine.PolicyEngine` around the chosen policy, and
wires the front-end.  Back-end caches are sized from the same
``cache_bytes`` knob as the simulated nodes' caches
(:class:`repro.cluster.config.ClusterConfig` defaults to 32 MB), which
is what makes live and simulated hit ratios comparable.

Chaos mode (:meth:`LiveCluster.enable_chaos`, process back-ends only)
interposes one :class:`~repro.live.faultproxy.ChaosProxy` per node and
starts a :class:`~repro.live.faultproxy.HealthMonitor`: the front-end
and the probes address the stable proxy ports, the cluster keeps the
real worker ports for admin traffic (``/stats``, ``/reset``, ``/warm``),
and :meth:`kill_backend`/:meth:`respawn_backend`/
:meth:`suspend_backend`/:meth:`resume_backend` give the
:class:`~repro.live.faultproxy.LiveFaultInjector` its verbs.  A respawn
spawns a fresh worker with a bumped ``--incarnation`` and repoints the
proxy, so node *addresses* survive crash-reboot exactly like sim node
ids do.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..servers import DistributionPolicy
from ..workload.traces import Trace
from . import http11
from .backend import BackendServer
from .engine import PolicyEngine
from .faultproxy import ChaosProxy, HealthMonitor, ResilienceConfig
from .fileset import materialize_fileset
from .frontend import FrontEnd

__all__ = ["LiveCluster", "LiveClusterConfig"]

MB = 1024 * 1024

#: Seconds to wait for a backend subprocess to print its handshake.
BACKEND_BOOT_TIMEOUT_S = 20.0

#: Seconds to wait for a backend to answer a /shutdown POST.  A
#: SIGSTOPped or wedged worker never answers; shutdown then falls
#: through to the SIGKILL escalation below instead of hanging forever.
SHUTDOWN_POST_TIMEOUT_S = 2.0

#: Seconds to wait for a worker to exit after /shutdown before SIGKILL.
SHUTDOWN_WAIT_TIMEOUT_S = 5.0

#: Seconds to wait for an admin scrape (/stats, /reset, /warm).
ADMIN_TIMEOUT_S = 5.0


@dataclass
class LiveClusterConfig:
    """Shape of the live cluster (the live twin of ``ClusterConfig``)."""

    nodes: int = 4
    #: Per-node LRU capacity; default matches the sim's 32 MB nodes.
    cache_bytes: int = 32 * MB
    host: str = "127.0.0.1"
    #: "process" = one subprocess per back-end (the real deployment
    #: shape); "inline" = back-ends in this event loop (hermetic tests).
    backend_mode: str = "process"
    #: Directory for the materialized file set (required).
    root: Path = field(default_factory=lambda: Path("live-fileset"))

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        if self.backend_mode not in ("process", "inline"):
            raise ValueError(f"unknown backend_mode {self.backend_mode!r}")
        self.root = Path(self.root)


class LiveCluster:
    """A running (front-end, back-ends, engine) triple."""

    def __init__(
        self,
        policy: DistributionPolicy,
        trace: Trace,
        config: Optional[LiveClusterConfig] = None,
    ) -> None:
        self.config = config or LiveClusterConfig()
        self.trace = trace
        self.engine = PolicyEngine(policy, self.config.nodes)
        self.frontend: Optional[FrontEnd] = None
        #: Ports the front-end and probes address: real worker ports, or
        #: the stable proxy ports in chaos mode.
        self.backend_ports: List[int] = []
        #: Real worker ports (admin traffic always goes direct).
        self.real_ports: List[int] = []
        self._procs: List[asyncio.subprocess.Process] = []
        self._proc_by_node: Dict[int, asyncio.subprocess.Process] = {}
        self._inline: List[BackendServer] = []
        self._suspended: set = set()
        self.incarnations: List[int] = [0] * self.config.nodes
        self.proxies: List[ChaosProxy] = []
        self.monitor: Optional[HealthMonitor] = None
        self.resilience: Optional[ResilienceConfig] = None
        #: :class:`~repro.overload.OverloadControl` handed to the
        #: front-end; set before :meth:`start` (like ``resilience``).
        self.overload = None
        self._chaos: Optional[Dict[str, Any]] = None
        self.kills = 0
        self.respawns = 0

    @property
    def frontend_port(self) -> int:
        assert self.frontend is not None, "cluster not started"
        return self.frontend.port

    @property
    def chaos_enabled(self) -> bool:
        return self._chaos is not None

    def enable_chaos(
        self,
        seed: int = 0,
        loss: float = 0.0,
        delay_s: float = 0.0,
        jitter_s: float = 0.0,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        """Arm chaos mode; must be called before :meth:`start`.

        Faults need real processes to kill/suspend, so chaos requires
        ``backend_mode="process"``.
        """
        if self.config.backend_mode != "process":
            raise RuntimeError(
                "chaos mode needs process back-ends "
                f"(backend_mode={self.config.backend_mode!r})"
            )
        if self.backend_ports:
            raise RuntimeError("enable_chaos must precede start()")
        self._chaos = {
            "seed": seed, "loss": loss, "delay_s": delay_s,
            "jitter_s": jitter_s,
        }
        self.resilience = resilience or ResilienceConfig()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Materialize files, boot back-ends, start the front-end.

        Returns the front-end's listening port.
        """
        # File materialization is blocking disk I/O (open/truncate per
        # touched file); run it off-loop so a large population doesn't
        # stall the event loop during boot (simlint REP105).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, materialize_fileset, self.trace, self.config.root
        )
        if self.config.backend_mode == "process":
            await self._start_backend_processes()
        else:
            await self._start_inline_backends()
        if self._chaos is not None:
            await self._start_proxies()
            self.monitor = HealthMonitor(
                self.engine,
                self.backend_ports,
                host=self.config.host,
                config=self.resilience,
            )
        self.frontend = FrontEnd(
            self.engine,
            self.backend_ports,
            host=self.config.host,
            monitor=self.monitor,
            resilience=self.resilience,
            overload=self.overload,
        )
        port = await self.frontend.start()
        if self.monitor is not None:
            self.monitor.start()
        return port

    async def stop(self) -> None:
        """Clean shutdown: front-end first, then every back-end.

        Robust against faulted workers: suspended processes are resumed
        first, the /shutdown POST is bounded (a wedged worker cannot
        stall teardown), and any process still alive after the grace
        window is SIGKILLed and reaped — including killed-and-respawned
        incarnations, so no orphan ever outlives the cluster.
        """
        # SIGCONT anything still suspended so it can serve /shutdown
        # (SIGKILL would also work — it terminates stopped processes —
        # but a resumable worker deserves the graceful path first).
        for node in sorted(self._suspended):
            proc = self._proc_by_node.get(node)
            if proc is not None and proc.returncode is None:
                try:
                    proc.send_signal(signal.SIGCONT)
                except ProcessLookupError:
                    pass
        self._suspended.clear()
        if self.monitor is not None:
            await self.monitor.stop()
        if self.frontend is not None:
            await self.frontend.stop()
        for port in self.real_ports:
            try:
                await asyncio.wait_for(
                    self._post(port, "/shutdown"),
                    timeout=SHUTDOWN_POST_TIMEOUT_S,
                )
            except (ConnectionError, OSError, http11.HTTPError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError):
                pass
        for proxy in self.proxies:
            await proxy.stop()
        for server in self._inline:
            await server.stop()
        for proc in self._procs:
            if proc.returncode is not None:
                continue
            try:
                await asyncio.wait_for(
                    proc.wait(), timeout=SHUTDOWN_WAIT_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                try:
                    proc.kill()
                except ProcessLookupError:
                    pass
                await proc.wait()
        self._procs.clear()
        self._proc_by_node.clear()
        self._inline.clear()
        self.proxies.clear()

    async def _start_inline_backends(self) -> None:
        for node_id in range(self.config.nodes):
            server = BackendServer(
                node_id=node_id,
                root=self.config.root,
                cache_bytes=self.config.cache_bytes,
                host=self.config.host,
            )
            port = await server.start()
            self._inline.append(server)
            self.real_ports.append(port)
            self.backend_ports.append(port)

    async def _start_backend_processes(self) -> None:
        for node_id in range(self.config.nodes):
            proc, port = await self._spawn_backend(node_id, incarnation=0)
            self.real_ports.append(port)
            self.backend_ports.append(port)

    async def _start_proxies(self) -> None:
        assert self._chaos is not None
        # The front-end/probe address list now points at the proxies;
        # real_ports keeps the direct worker addresses for admin calls.
        self.backend_ports = []
        for node_id in range(self.config.nodes):
            proxy = ChaosProxy(
                node_id=node_id,
                upstream_port=self.real_ports[node_id],
                host=self.config.host,
                seed=self._chaos["seed"],
                loss=self._chaos["loss"],
                delay_s=self._chaos["delay_s"],
                jitter_s=self._chaos["jitter_s"],
            )
            port = await proxy.start()
            self.proxies.append(proxy)
            self.backend_ports.append(port)

    async def _spawn_backend(self, node_id: int, incarnation: int):
        # The workers import repro; make sure they resolve the same
        # source tree this process runs from, regardless of the parent's
        # installation style.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.live.backend",
            "--node",
            str(node_id),
            "--root",
            str(self.config.root),
            "--cache-bytes",
            str(self.config.cache_bytes),
            "--host",
            self.config.host,
            "--incarnation",
            str(incarnation),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=env,
        )
        self._procs.append(proc)
        self._proc_by_node[node_id] = proc
        port = await asyncio.wait_for(
            self._read_handshake(proc, node_id), timeout=BACKEND_BOOT_TIMEOUT_S
        )
        return proc, port

    @staticmethod
    async def _read_handshake(proc: asyncio.subprocess.Process, node_id: int) -> int:
        assert proc.stdout is not None
        line = (await proc.stdout.readline()).decode().strip()
        prefix = f"REPRO-LIVE-BACKEND node={node_id} port="
        if not line.startswith(prefix):
            raise RuntimeError(f"backend {node_id} bad handshake: {line!r}")
        return int(line[len(prefix):])

    # -- fault verbs (LiveFaultInjector calls these) ------------------------

    def _live_proc(self, node_id: int) -> asyncio.subprocess.Process:
        if self.config.backend_mode != "process":
            raise RuntimeError("fault verbs need process back-ends")
        proc = self._proc_by_node.get(node_id)
        if proc is None:
            raise RuntimeError(f"node {node_id} has no live process")
        return proc

    async def kill_backend(self, node_id: int) -> None:
        """SIGKILL node ``node_id``'s worker and reap it."""
        proc = self._live_proc(node_id)
        try:
            proc.kill()
        except ProcessLookupError:
            pass
        await proc.wait()
        self._suspended.discard(node_id)
        self.kills += 1

    async def respawn_backend(self, node_id: int) -> None:
        """Boot a fresh worker for ``node_id`` with a bumped incarnation.

        The new worker starts cold (empty cache) on a new ephemeral
        port; in chaos mode the node's proxy is repointed so the rest of
        the system keeps its stable address.
        """
        self.incarnations[node_id] += 1
        _, port = await self._spawn_backend(
            node_id, incarnation=self.incarnations[node_id]
        )
        self.real_ports[node_id] = port
        if self.proxies:
            self.proxies[node_id].set_upstream(port)
        else:
            self.backend_ports[node_id] = port
        self.respawns += 1

    def suspend_backend(self, node_id: int) -> None:
        """SIGSTOP node ``node_id``'s worker (the live fail-slow analog)."""
        proc = self._live_proc(node_id)
        try:
            proc.send_signal(signal.SIGSTOP)
        except ProcessLookupError:
            return
        self._suspended.add(node_id)

    def resume_backend(self, node_id: int) -> None:
        """SIGCONT a suspended worker."""
        proc = self._live_proc(node_id)
        try:
            proc.send_signal(signal.SIGCONT)
        except ProcessLookupError:
            pass
        self._suspended.discard(node_id)

    # -- meters ------------------------------------------------------------

    async def backend_stats(self) -> List[Dict[str, Any]]:
        """Scrape every back-end's ``/stats`` endpoint.

        A node that is down (killed mid-run, not yet respawned)
        contributes a zeroed placeholder instead of failing the scrape:
        whatever it served before dying is unrecoverable, and the
        client-side loadtest accounting is what conservation rests on.
        """
        stats = []
        for node_id, port in enumerate(self.real_ports):
            try:
                response = await asyncio.wait_for(
                    self._get(port, "/stats"), timeout=ADMIN_TIMEOUT_S
                )
                stats.append(json.loads(response.body))
            except (ConnectionError, OSError, http11.HTTPError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError):
                stats.append({
                    "node": node_id, "served": 0, "relayed": 0, "errors": 0,
                    "cache_hits": 0, "cache_misses": 0, "cache_insertions": 0,
                    "cache_evictions": 0, "cache_used_bytes": 0,
                    "cache_files": 0, "unreachable": 1,
                })
        return stats

    async def reset_meters(self) -> None:
        """Warmup boundary: zero all counters, keep cache content."""
        self.engine.reset_meters()
        if self.frontend is not None:
            self.frontend.reset_meters()
        for port in self.real_ports:
            try:
                await asyncio.wait_for(
                    self._post(port, "/reset"), timeout=ADMIN_TIMEOUT_S
                )
            except (ConnectionError, OSError, http11.HTTPError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError):
                pass

    async def prewarm(self, file_ids) -> None:
        """Replay a fid sequence into *every* back-end's cache.

        The live twin of the simulator's zero-time ``_prewarm`` for
        strictly-local policies, where each node's cache sees the whole
        request stream.
        """
        body = json.dumps([int(fid) for fid in file_ids]).encode()
        for port in self.real_ports:
            try:
                await asyncio.wait_for(
                    self._post(port, "/warm", body), timeout=ADMIN_TIMEOUT_S
                )
            except (ConnectionError, OSError, http11.HTTPError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError):
                pass

    def live_summary(self) -> Dict[str, Any]:
        """Run-wide fault/resilience bookkeeping for the ``SimResult``."""
        out: Dict[str, Any] = {
            "kills": self.kills,
            "respawns": self.respawns,
            "incarnations": list(self.incarnations),
        }
        if self.frontend is not None:
            out["frontend_retries"] = self.frontend.retried
            out["frontend_shed"] = self.frontend.shed
            out["frontend_timeouts"] = self.frontend.timeouts
        if self.monitor is not None:
            out["health"] = self.monitor.stats()
        if self.proxies:
            out["proxies"] = [p.stats() for p in self.proxies]
        return out

    # -- tiny HTTP client helpers -----------------------------------------

    async def _get(self, port: int, path: str) -> http11.Response:
        return await self._roundtrip(port, "GET", path)

    async def _post(self, port: int, path: str, body: bytes = b"") -> http11.Response:
        return await self._roundtrip(port, "POST", path, body)

    async def _roundtrip(
        self, port: int, method: str, path: str, body: bytes = b""
    ) -> http11.Response:
        reader, writer = await asyncio.open_connection(self.config.host, port)
        try:
            writer.write(http11.render_request(method, path, body=body))
            await writer.drain()
            return await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
