"""Boot and tear down a complete localhost cluster.

:class:`LiveCluster` owns the whole stack: it materializes the trace's
file set, starts one back-end per node (real subprocesses by default,
in-process servers for hermetic tests), builds the
:class:`~repro.live.engine.PolicyEngine` around the chosen policy, and
wires the front-end.  Back-end caches are sized from the same
``cache_bytes`` knob as the simulated nodes' caches
(:class:`repro.cluster.config.ClusterConfig` defaults to 32 MB), which
is what makes live and simulated hit ratios comparable.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..servers import DistributionPolicy
from ..workload.traces import Trace
from . import http11
from .backend import BackendServer
from .engine import PolicyEngine
from .fileset import materialize_fileset
from .frontend import FrontEnd

__all__ = ["LiveCluster", "LiveClusterConfig"]

MB = 1024 * 1024

#: Seconds to wait for a backend subprocess to print its handshake.
BACKEND_BOOT_TIMEOUT_S = 20.0


@dataclass
class LiveClusterConfig:
    """Shape of the live cluster (the live twin of ``ClusterConfig``)."""

    nodes: int = 4
    #: Per-node LRU capacity; default matches the sim's 32 MB nodes.
    cache_bytes: int = 32 * MB
    host: str = "127.0.0.1"
    #: "process" = one subprocess per back-end (the real deployment
    #: shape); "inline" = back-ends in this event loop (hermetic tests).
    backend_mode: str = "process"
    #: Directory for the materialized file set (required).
    root: Path = field(default_factory=lambda: Path("live-fileset"))

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        if self.backend_mode not in ("process", "inline"):
            raise ValueError(f"unknown backend_mode {self.backend_mode!r}")
        self.root = Path(self.root)


class LiveCluster:
    """A running (front-end, back-ends, engine) triple."""

    def __init__(
        self,
        policy: DistributionPolicy,
        trace: Trace,
        config: Optional[LiveClusterConfig] = None,
    ) -> None:
        self.config = config or LiveClusterConfig()
        self.trace = trace
        self.engine = PolicyEngine(policy, self.config.nodes)
        self.frontend: Optional[FrontEnd] = None
        self.backend_ports: List[int] = []
        self._procs: List[asyncio.subprocess.Process] = []
        self._inline: List[BackendServer] = []

    @property
    def frontend_port(self) -> int:
        assert self.frontend is not None, "cluster not started"
        return self.frontend.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Materialize files, boot back-ends, start the front-end.

        Returns the front-end's listening port.
        """
        # File materialization is blocking disk I/O (open/truncate per
        # touched file); run it off-loop so a large population doesn't
        # stall the event loop during boot (simlint REP105).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, materialize_fileset, self.trace, self.config.root
        )
        if self.config.backend_mode == "process":
            await self._start_backend_processes()
        else:
            await self._start_inline_backends()
        self.frontend = FrontEnd(
            self.engine, self.backend_ports, host=self.config.host
        )
        return await self.frontend.start()

    async def stop(self) -> None:
        """Clean shutdown: front-end first, then every back-end."""
        if self.frontend is not None:
            await self.frontend.stop()
        for port in self.backend_ports:
            try:
                await self._post(port, "/shutdown")
            except (ConnectionError, OSError, http11.HTTPError):
                pass
        for server in self._inline:
            await server.stop()
        for proc in self._procs:
            try:
                await asyncio.wait_for(proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
        self._procs.clear()
        self._inline.clear()

    async def _start_inline_backends(self) -> None:
        for node_id in range(self.config.nodes):
            server = BackendServer(
                node_id=node_id,
                root=self.config.root,
                cache_bytes=self.config.cache_bytes,
                host=self.config.host,
            )
            port = await server.start()
            self._inline.append(server)
            self.backend_ports.append(port)

    async def _start_backend_processes(self) -> None:
        # The workers import repro; make sure they resolve the same
        # source tree this process runs from, regardless of the parent's
        # installation style.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        for node_id in range(self.config.nodes):
            proc = await asyncio.create_subprocess_exec(
                sys.executable,
                "-m",
                "repro.live.backend",
                "--node",
                str(node_id),
                "--root",
                str(self.config.root),
                "--cache-bytes",
                str(self.config.cache_bytes),
                "--host",
                self.config.host,
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.DEVNULL,
                env=env,
            )
            self._procs.append(proc)
            port = await asyncio.wait_for(
                self._read_handshake(proc, node_id), timeout=BACKEND_BOOT_TIMEOUT_S
            )
            self.backend_ports.append(port)

    @staticmethod
    async def _read_handshake(proc: asyncio.subprocess.Process, node_id: int) -> int:
        assert proc.stdout is not None
        line = (await proc.stdout.readline()).decode().strip()
        prefix = f"REPRO-LIVE-BACKEND node={node_id} port="
        if not line.startswith(prefix):
            raise RuntimeError(f"backend {node_id} bad handshake: {line!r}")
        return int(line[len(prefix):])

    # -- meters ------------------------------------------------------------

    async def backend_stats(self) -> List[Dict[str, Any]]:
        """Scrape every back-end's ``/stats`` endpoint."""
        stats = []
        for port in self.backend_ports:
            response = await self._get(port, "/stats")
            stats.append(json.loads(response.body))
        return stats

    async def reset_meters(self) -> None:
        """Warmup boundary: zero all counters, keep cache content."""
        self.engine.reset_meters()
        if self.frontend is not None:
            self.frontend.reset_meters()
        for port in self.backend_ports:
            await self._post(port, "/reset")

    async def prewarm(self, file_ids) -> None:
        """Replay a fid sequence into *every* back-end's cache.

        The live twin of the simulator's zero-time ``_prewarm`` for
        strictly-local policies, where each node's cache sees the whole
        request stream.
        """
        body = json.dumps([int(fid) for fid in file_ids]).encode()
        for port in self.backend_ports:
            await self._post(port, "/warm", body)

    # -- tiny HTTP client helpers -----------------------------------------

    async def _get(self, port: int, path: str) -> http11.Response:
        return await self._roundtrip(port, "GET", path)

    async def _post(self, port: int, path: str, body: bytes = b"") -> http11.Response:
        return await self._roundtrip(port, "POST", path, body)

    async def _roundtrip(
        self, port: int, method: str, path: str, body: bytes = b""
    ) -> http11.Response:
        reader, writer = await asyncio.open_connection(self.config.host, port)
        try:
            writer.write(http11.render_request(method, path, body=body))
            await writer.drain()
            return await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
