"""Transport-neutral policy engine for the live cluster.

:class:`PolicyEngine` takes any :class:`~repro.servers.DistributionPolicy`
and binds it to a *live membership* instead of the simulated cluster: a
duck-typed object exposing exactly the surface policies read —
``num_nodes``, ``node(i).open_connections``, and a ``net`` control plane
(``send_control_cb`` / ``broadcast_control`` / ``protocol``).  Time comes
from an injected :class:`~repro.servers.Clock` (a wall clock by default).

Control messages the policies emit (L2S load broadcasts, LARD completion
notices) are applied synchronously: on a localhost cluster propagation is
microseconds against multi-millisecond service times, so zero-latency
delivery is the honest model.  The engine still *counts* every message
so ``messages_per_request`` is comparable with the simulator's.

The engine is deliberately transport-neutral: the asyncio front-end calls
:meth:`route` / :meth:`connection_opened` / :meth:`request_completed`,
but nothing here touches sockets — unit tests drive the same methods
directly, and the lifecycle-order tests assert the hook sequence matches
:mod:`repro.sim.lifecycle` call for call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..servers import Clock, Decision, DistributionPolicy, ServiceUnavailable
from .clock import WallClock

__all__ = ["LiveUnsupported", "PolicyEngine", "RouteOutcome"]


class LiveUnsupported(Exception):
    """The policy cannot run on the live substrate (e.g. lard-ng's
    ``async_decide`` protocol needs the DES scheduler)."""


@dataclass(frozen=True)
class RouteOutcome:
    """The engine's answer for one request."""

    #: 0-based arrival index of the request.
    index: int
    #: File id (popularity rank) requested.
    file_id: int
    #: Node the client connection landed on.
    initial: int
    #: Node that will service the request.
    target: int
    #: True when the request was handed off away from ``initial``.
    forwarded: bool
    #: True when the decision replicated the file onto a new server.
    replicated: bool


class _LiveNode:
    """Per-node view the policies read: open-connection count."""

    __slots__ = ("id", "open_connections")

    def __init__(self, node_id: int) -> None:
        self.id = node_id
        self.open_connections = 0


class _LiveControlPlane:
    """Zero-latency local control plane with message accounting.

    Mirrors the subset of :class:`repro.cluster.network.Interconnect`
    the policies call.  ``protocol`` is ``None`` — the retry/ack layer
    only exists under simulated network faults (LARD checks this before
    arming drop-compensation callbacks).
    """

    protocol = None

    def __init__(self, nodes: List[_LiveNode]) -> None:
        self.nodes = nodes
        self.messages_sent = 0
        self.messages_by_kind: Dict[str, int] = {}

    def _count(self, kind: str) -> None:
        self.messages_sent += 1
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def send_control_cb(
        self,
        src: int,
        dst: int,
        kind: str = "control",
        done: Optional[Callable[[], None]] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        self._count(kind)
        if done is not None:
            done()

    def broadcast_control(
        self,
        src: int,
        kind: str = "broadcast",
        exclude: Optional[int] = None,
    ) -> None:
        for node in self.nodes:
            if node.id == src or node.id == exclude:
                continue
            self._count(kind)


class _LiveMembership:
    """Duck-typed stand-in for :class:`repro.cluster.Cluster`.

    Policies only read ``num_nodes`` / ``node(i)`` / ``net`` / ``env``
    from their bound cluster; this object provides those against live
    state.  ``env`` doubles as the clock so even a policy that (wrongly)
    reads ``cluster.env.now`` instead of ``self.clock.now`` sees wall
    time rather than crashing — but simlint and the base-class contract
    keep that path dead.
    """

    def __init__(self, num_nodes: int, clock: Clock) -> None:
        self.num_nodes = num_nodes
        self.env = clock
        self.nodes = [_LiveNode(i) for i in range(num_nodes)]
        self.net = _LiveControlPlane(self.nodes)

    def node(self, node_id: int) -> _LiveNode:
        return self.nodes[node_id]


class PolicyEngine:
    """Drives one ``DistributionPolicy`` from live request events.

    The hook sequence per request matches :mod:`repro.sim.lifecycle`:

    1. :meth:`route` — ``initial_node`` then ``decide`` (the simulator
       interposes parse time between the two; live, the HTTP parse has
       already happened when the front-end calls this).
    2. :meth:`connection_opened` at the target — increments the target's
       open-connection count, then fires ``on_connection_change``.
    3. :meth:`request_completed` — decrement, then ``on_connection_change``,
       ``on_complete``, ``on_connection_end``, in exactly the simulator's
       close-path order.

    Aborts route through :meth:`request_aborted` and failed hand-offs
    through :meth:`handoff_failed`, same as the sim's fault paths.

    All methods take an internal lock: the asyncio front-end is single-
    threaded, but disk reads hop through an executor and the loadtest's
    stats scrape may run off-loop, so the engine stays correct either way.
    """

    def __init__(
        self,
        policy: DistributionPolicy,
        num_nodes: int,
        clock: Optional[Clock] = None,
    ) -> None:
        if getattr(policy, "async_decide", False):
            raise LiveUnsupported(
                f"policy {policy.name!r} decides through a DES generator "
                "(async_decide=True) and cannot run on the live substrate"
            )
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.policy = policy
        self.clock: Clock = clock if clock is not None else WallClock()
        self.membership = _LiveMembership(num_nodes, self.clock)
        self._lock = threading.Lock()
        # Nodes currently marked failed.  Guards the membership hooks so
        # passive suspicion and active probes (which can race to the
        # same conclusion) produce exactly one on_node_failed per
        # down-transition — mirroring the sim driver's idempotent
        # crash_node/recover_node.
        self._down: set = set()
        # Engine-level accounting (the live analogue of the sim meters).
        self.routed = 0
        self.completed = 0
        self.aborted = 0
        self.unavailable = 0
        self.forwarded = 0
        self.replicated = 0
        self.handoffs_failed = 0
        # bind() accepts any object with the cluster surface; the type
        # annotation on DistributionPolicy.bind names Cluster, but the
        # contract is structural (see servers.base docstring).
        policy.bind(self.membership, clock=self.clock)  # type: ignore[arg-type]

    @property
    def num_nodes(self) -> int:
        return self.membership.num_nodes

    @property
    def net(self) -> _LiveControlPlane:
        return self.membership.net

    # -- request lifecycle -------------------------------------------------

    def route(self, index: int, file_id: int) -> RouteOutcome:
        """Pick the service node for arrival ``index`` requesting ``file_id``.

        Raises :class:`~repro.servers.ServiceUnavailable` when the policy
        cannot service anything (counted in ``unavailable``).
        """
        with self._lock:
            try:
                initial = self.policy.initial_node(index, file_id)
                decision: Decision = self.policy.decide(initial, file_id)
            except ServiceUnavailable:
                self.unavailable += 1
                raise
            self.routed += 1
            if decision.forwarded:
                self.forwarded += 1
            if decision.replicated:
                self.replicated += 1
            return RouteOutcome(
                index=index,
                file_id=file_id,
                initial=initial,
                target=decision.target,
                forwarded=decision.forwarded,
                replicated=decision.replicated,
            )

    def connection_opened(self, node_id: int) -> None:
        """The service connection at ``node_id`` opened."""
        with self._lock:
            self.membership.node(node_id).open_connections += 1
            self.policy.on_connection_change(node_id)

    def request_completed(self, node_id: int, file_id: int) -> None:
        """The request finished at its service node (close-path hooks)."""
        with self._lock:
            node = self.membership.node(node_id)
            node.open_connections -= 1
            assert node.open_connections >= 0, "connection count went negative"
            self.completed += 1
            self.policy.on_connection_change(node_id)
            self.policy.on_complete(node_id, file_id)
            self.policy.on_connection_end(node_id)

    def request_aborted(self, initial: int, opened: bool, target: Optional[int] = None) -> None:
        """A request died mid-flight (backend error, timeout).

        When the service connection had opened, the close-path hooks fire
        first at ``target`` (mirroring the sim, where the connection close
        precedes the abort notification), then ``on_request_aborted``.
        """
        with self._lock:
            if opened:
                node = self.membership.node(target if target is not None else initial)
                node.open_connections -= 1
                assert node.open_connections >= 0, "connection count went negative"
                self.policy.on_connection_change(node.id)
                self.policy.on_connection_end(node.id)
            self.aborted += 1
            self.policy.on_request_aborted(initial, opened)

    def handoff_failed(self, initial: int, target: int) -> None:
        """The TCP relay from ``initial`` to ``target`` failed."""
        with self._lock:
            self.handoffs_failed += 1
            self.policy.on_handoff_failed(initial, target)

    # -- membership events -------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Mark ``node_id`` failed (idempotent, like the sim driver)."""
        with self._lock:
            if node_id in self._down:
                return
            self._down.add(node_id)
            self.policy.on_node_failed(node_id)

    def recover_node(self, node_id: int) -> None:
        """Mark ``node_id`` recovered (no-op unless currently failed)."""
        with self._lock:
            if node_id not in self._down:
                return
            self._down.discard(node_id)
            self.policy.on_node_recovered(node_id)

    @property
    def down_nodes(self) -> List[int]:
        with self._lock:
            return sorted(self._down)

    # -- reporting ---------------------------------------------------------

    def reset_meters(self) -> None:
        """Zero engine and policy statistics (warmup boundary).

        Policy *state* (LARD server sets, L2S views) survives, exactly
        like the simulator's meter reset.
        """
        with self._lock:
            self.routed = 0
            self.completed = 0
            self.aborted = 0
            self.unavailable = 0
            self.forwarded = 0
            self.replicated = 0
            self.handoffs_failed = 0
            self.net.messages_sent = 0
            self.net.messages_by_kind.clear()
            self.policy.reset_stats()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "routed": self.routed,
                "completed": self.completed,
                "aborted": self.aborted,
                "unavailable": self.unavailable,
                "forwarded": self.forwarded,
                "replicated": self.replicated,
                "handoffs_failed": self.handoffs_failed,
                "control_messages": self.net.messages_sent,
                "control_messages_by_kind": dict(self.net.messages_by_kind),
                "down_nodes": sorted(self._down),
                "open_connections": [
                    node.open_connections for node in self.membership.nodes
                ],
                "policy": self.policy.stats(),
            }

    def check_invariants(self) -> List[str]:
        """Engine + policy structural invariants (empty = healthy)."""
        with self._lock:
            problems = list(self.policy.check_invariants())
            for node in self.membership.nodes:
                if node.open_connections < 0:
                    problems.append(
                        f"node {node.id} open_connections negative "
                        f"({node.open_connections})"
                    )
            return problems
