"""Live fault injection: chaos proxies, health probes, and the injector.

This is the live twin of :mod:`repro.faults`/:mod:`repro.netfaults`,
executing the *same* serializable :class:`~repro.chaos.spec.Scenario`
plan against a real cluster of worker subprocesses:

* :class:`ChaosProxy` — a tiny TCP proxy interposed in front of each
  back-end.  The front-end and the health prober talk to the proxy
  port (which never changes), the proxy talks to whichever worker
  incarnation currently backs the node.  Connection-level netfaults
  live here: ``link_down`` refuses connections, ``loss`` severs a
  seeded fraction of connections before any byte flows, and
  ``delay``/``jitter`` stretch connection setup — the TCP-stream
  analog of the sim's per-message perturbation.

* :class:`HealthMonitor` — mark-down/mark-up state per node, fed by
  periodic ``GET /health`` probes (through the proxy, so it sees what
  clients see) and by passive suspicion from the front-end's request
  failures.  Only state *transitions* reach the policy, via
  ``engine.fail_node``/``recover_node`` — the same membership hooks
  the sim's :class:`~repro.faults.injector.FaultInjector` fires.  A
  changed incarnation on a node never observed down forces a
  fail/recover cycle so policies flush per-node state exactly as they
  do for a sim crash-reboot.

* :class:`LiveFaultInjector` — executes the scenario's
  :meth:`~repro.chaos.spec.Scenario.live_schedule` actions
  (kill/respawn via SIGKILL + fresh incarnation, suspend/resume via
  SIGSTOP/SIGCONT, link down/up via the proxies) when the *loadtest
  progress fraction* crosses each action's trigger point.  Progress
  fractions, not wall seconds: the sim and live runs then perturb the
  same fraction of the workload, which is what makes their
  availability numbers comparable.

* :class:`ResilienceConfig` — the front-end's resilience knobs.  The
  retry budget and capped-exponential backoff reuse the sim's
  :class:`~repro.faults.schedule.RetryPolicy` verbatim, so "mirroring
  RetrySpec semantics" is enforced by construction rather than by
  keeping two sets of constants in sync.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..faults.schedule import RetryPolicy
from . import http11

__all__ = [
    "ChaosProxy",
    "HealthMonitor",
    "LiveFaultInjector",
    "ResilienceConfig",
]


@dataclass
class ResilienceConfig:
    """Front-end resilience knobs (live twin of the sim's fault knobs)."""

    #: Retry budget + capped-exponential backoff, shared *class* with the
    #: sim driver so live retries mirror RetrySpec semantics exactly.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-attempt back-end fetch timeout at the front-end.
    request_timeout_s: float = 10.0
    #: Seconds between health-probe sweeps.
    probe_interval_s: float = 0.2
    #: Per-probe timeout.
    probe_timeout_s: float = 1.0
    #: Consecutive probe failures before an up node is marked down.
    fail_threshold: int = 2
    #: Admission shedding floor: with fewer healthy back-ends than this,
    #: new requests are shed with ``X-Shed: 1`` instead of queued onto a
    #: cluster that cannot serve them.
    min_healthy: int = 1

    def __post_init__(self) -> None:
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if self.probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive")
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.min_healthy < 0:
            raise ValueError("min_healthy must be >= 0")


class ChaosProxy:
    """TCP proxy in front of one back-end: stable port, injected faults.

    The proxy is the node's *address* for the rest of the system; a
    respawned worker gets a fresh ephemeral port, and
    :meth:`set_upstream` repoints the proxy without the front-end ever
    learning about it — exactly how a sim node keeps its id across an
    incarnation bump.
    """

    def __init__(
        self,
        node_id: int,
        upstream_port: int,
        host: str = "127.0.0.1",
        seed: int = 0,
        loss: float = 0.0,
        delay_s: float = 0.0,
        jitter_s: float = 0.0,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        if delay_s < 0 or jitter_s < 0:
            raise ValueError("delay_s/jitter_s must be >= 0")
        self.node_id = node_id
        self.host = host
        self.upstream_port = upstream_port
        self.loss = loss
        self.delay_s = delay_s
        self.jitter_s = jitter_s
        #: While True, every inbound connection is refused (link_out).
        self.link_down = False
        # Seeded per-proxy: fault decisions replay for a fixed seed and
        # connection order (REP001 — no unseeded RNG, even live).
        self._rng = random.Random((seed << 8) ^ node_id)
        self._server: Optional[asyncio.base_events.Server] = None
        self.connections = 0
        self.refused = 0
        self.dropped = 0
        self.delay_injected_s = 0.0

    @property
    def port(self) -> int:
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[1]

    def set_upstream(self, port: int) -> None:
        self.upstream_port = port

    async def start(self, port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def stats(self) -> Dict[str, Any]:
        return {
            "node": self.node_id,
            "connections": self.connections,
            "refused": self.refused,
            "dropped": self.dropped,
            "delay_injected_s": self.delay_injected_s,
        }

    # -- connection handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            if self.link_down:
                self.refused += 1
                return
            if self.loss > 0.0 and self._rng.random() < self.loss:
                # Sever before any byte flows: the client sees a clean
                # connection reset, the message-loss analog for a stream.
                self.dropped += 1
                return
            delay = self.delay_s
            if self.jitter_s > 0.0:
                delay += self._rng.random() * self.jitter_s
            if delay > 0.0:
                self.delay_injected_s += delay
                await asyncio.sleep(delay)
            try:
                up_reader, up_writer = await asyncio.open_connection(
                    self.host, self.upstream_port
                )
            except (ConnectionError, OSError):
                self.refused += 1
                return
            try:
                await asyncio.gather(
                    self._pump(reader, up_writer),
                    self._pump(up_reader, writer),
                )
            finally:
                up_writer.close()
                try:
                    await up_writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _pump(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass


class HealthMonitor:
    """Per-node up/down state feeding the policy's membership hooks.

    Two information sources, one state machine:

    * **passive** — :meth:`suspect` from the front-end when a request to
      the node dies on a transport error.  One strike marks the node
      down immediately (a failed *request* is stronger evidence than a
      failed probe, and the sim's injector likewise fails the node at
      the crash instant, not a probe interval later).
    * **active** — the :meth:`run` sweep probes every node's ``/health``
      through its public (proxy) address.  ``fail_threshold``
      consecutive failures mark an up node down; a single success marks
      a down node back up and resets the strike count.

    Only transitions call into the engine, and the engine's own
    idempotency guard makes stray duplicate calls harmless.
    """

    def __init__(
        self,
        engine,
        ports: List[int],
        host: str = "127.0.0.1",
        config: Optional[ResilienceConfig] = None,
    ) -> None:
        self.engine = engine
        #: Shared, live-updated list of probe addresses (proxy ports in
        #: chaos mode, so probes traverse the same faults clients do).
        self.ports = ports
        self.host = host
        self.config = config or ResilienceConfig()
        n = len(ports)
        self._up = [True] * n
        self._fails = [0] * n
        self._incarnation: List[Optional[int]] = [None] * n
        self._task: Optional[asyncio.Task] = None
        self.markdowns = 0
        self.markups = 0
        self.incarnation_flips = 0
        self.probes = 0
        self.probe_failures = 0

    # -- state queries -------------------------------------------------------

    def is_up(self, node: int) -> bool:
        return self._up[node]

    def healthy_count(self) -> int:
        return sum(self._up)

    def stats(self) -> Dict[str, int]:
        return {
            "markdowns": self.markdowns,
            "markups": self.markups,
            "incarnation_flips": self.incarnation_flips,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
        }

    # -- transitions ---------------------------------------------------------

    def suspect(self, node: int) -> None:
        """Passive mark-down: a live request to ``node`` just failed."""
        if self._up[node]:
            self._mark_down(node)

    def _mark_down(self, node: int) -> None:
        self._up[node] = False
        self.markdowns += 1
        self.engine.fail_node(node)

    def _mark_up(self, node: int) -> None:
        self._up[node] = True
        self._fails[node] = 0
        self.markups += 1
        self.engine.recover_node(node)

    def note_incarnation(self, node: int, incarnation: int) -> None:
        """A probe reported ``incarnation`` for ``node``.

        A bump on a node we never observed down means the worker died
        and respawned between sweeps: policies still hold state for the
        dead incarnation (LARD server sets, cached load views), so force
        the same fail/recover cycle a sim crash-reboot produces.
        """
        seen = self._incarnation[node]
        self._incarnation[node] = incarnation
        if seen is None or seen == incarnation:
            return
        self.incarnation_flips += 1
        if self._up[node]:
            self.engine.fail_node(node)
            self.engine.recover_node(node)

    # -- probing -------------------------------------------------------------

    def start(self) -> None:
        assert self._task is None, "monitor already started"
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while True:
            await self.probe_all()
            await asyncio.sleep(self.config.probe_interval_s)

    async def probe_all(self) -> None:
        for node in range(len(self.ports)):
            await self._probe(node)

    async def _probe(self, node: int) -> None:
        self.probes += 1
        try:
            payload = await asyncio.wait_for(
                self._fetch_health(node), timeout=self.config.probe_timeout_s
            )
        except (
            ConnectionError,
            OSError,
            http11.HTTPError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ValueError,
        ):
            self.probe_failures += 1
            self._fails[node] += 1
            if self._up[node] and self._fails[node] >= self.config.fail_threshold:
                self._mark_down(node)
            return
        self._fails[node] = 0
        self.note_incarnation(node, int(payload.get("incarnation", 0)))
        if not self._up[node]:
            self._mark_up(node)

    async def _fetch_health(self, node: int) -> Dict[str, Any]:
        reader, writer = await asyncio.open_connection(
            self.host, self.ports[node]
        )
        try:
            writer.write(http11.render_request("GET", "/health"))
            await writer.drain()
            response = await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if response.status != 200:
            raise http11.HTTPError(f"health probe status {response.status}")
        return json.loads(response.body)


class LiveFaultInjector:
    """Executes a scenario's live actions against the running cluster.

    The schedule is :meth:`Scenario.live_schedule` output: ``(frac,
    action, params)`` triples where ``frac`` is a fraction of the run.
    The injector polls a progress callable (requests finished / total)
    and fires every action whose trigger the progress has crossed, in
    schedule order.  :meth:`finish` forces any stragglers (e.g. a
    recovery scheduled at the very end of the horizon) so a run never
    leaks a suspended or link-downed node past its own teardown.
    """

    def __init__(
        self,
        cluster,
        schedule: List[Tuple[float, str, Dict[str, Any]]],
        progress: Callable[[], float],
        poll_interval_s: float = 0.02,
        on_event: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.cluster = cluster
        self._pending = sorted(schedule, key=lambda a: a[0])
        self._progress = progress
        self.poll_interval_s = poll_interval_s
        self._on_event = on_event
        self._force = False
        self._task: Optional[asyncio.Task] = None
        #: Actions actually executed, in order: (frac, action, node).
        self.executed: List[Tuple[float, str, int]] = []

    @property
    def done(self) -> bool:
        return not self._pending

    def start(self) -> None:
        assert self._task is None, "injector already started"
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def finish(self, timeout_s: float = 30.0) -> None:
        """Execute any remaining actions immediately, then stop."""
        if self._task is None:
            return
        self._force = True
        try:
            await asyncio.wait_for(self._task, timeout=timeout_s)
        except asyncio.TimeoutError:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        self._task = None

    async def stop(self) -> None:
        """Cancel without executing stragglers (error-path teardown)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while self._pending:
            frac = 1.0 if self._force else self._progress()
            while self._pending and self._pending[0][0] <= frac:
                trigger, action, params = self._pending.pop(0)
                await self._execute(trigger, action, params)
            if self._pending:
                await asyncio.sleep(self.poll_interval_s)

    async def _execute(
        self, trigger: float, action: str, params: Dict[str, Any]
    ) -> None:
        node = int(params["node"])
        if action == "kill":
            await self.cluster.kill_backend(node)
        elif action == "respawn":
            await self.cluster.respawn_backend(node)
        elif action == "suspend":
            self.cluster.suspend_backend(node)
        elif action == "resume":
            self.cluster.resume_backend(node)
        elif action == "link_down":
            self.cluster.proxies[node].link_down = True
        elif action == "link_up":
            self.cluster.proxies[node].link_down = False
        else:
            raise ValueError(f"unknown live action {action!r}")
        self.executed.append((trigger, action, node))
        if self._on_event is not None:
            self._on_event(action, node)
