"""One back-end worker: LRU-cached file service + TCP hand-off relay.

Each back-end mirrors one simulated node: it serves files from the
materialized file set through the *same*
:class:`~repro.cluster.cache.LRUFileCache` class the simulator's nodes
use (sized identically), so the live cache-hit ratio is directly
comparable with the sim's.  Cache hits serve bytes from memory; misses
read the file from disk in an executor thread (the paper's servers
likewise only block on disk for misses) and insert it, evicting LRU
files' bytes.

Hand-off: when a request arrives with an ``X-Forward-Port`` header, this
node is the *initial* node of a handed-off request — it opens a second
TCP connection to the target back-end and relays the response, tagging
it ``X-Handoff: 1``.  That is the live twin of the simulator's hand-off
accounting: the forwarding work and the extra network round-trip happen
on the initial node, the cache work on the target.

Run standalone as a process with ``python -m repro.live.backend``; the
parent reads the ``REPRO-LIVE-BACKEND node=<id> port=<port>`` handshake
line from stdout.  :class:`LiveCluster` also supports in-process mode
for hermetic tests.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Dict, Optional

from ..cluster.cache import LRUFileCache
from . import http11
from .fileset import file_name, load_manifest

__all__ = ["BackendServer", "main"]


class BackendServer:
    """Serves ``GET /f/<fid>`` from an LRU byte cache over disk."""

    def __init__(
        self,
        node_id: int,
        root: Path,
        cache_bytes: int,
        host: str = "127.0.0.1",
        incarnation: int = 0,
    ) -> None:
        self.node_id = node_id
        self.root = Path(root)
        self.host = host
        #: Bumped by the cluster on every respawn; surfaced via /health
        #: so the front-end's probes detect a silent kill-and-restart
        #: (the live twin of the sim nodes' incarnation counter).
        self.incarnation = incarnation
        self.cache = LRUFileCache(cache_bytes)
        #: Bytes of currently-cached files; evictions drop entries so
        #: resident bytes always equal ``cache.used_bytes``.
        self._content: Dict[int, bytes] = {}
        self.sizes = load_manifest(self.root)
        self.served = 0
        self.relayed = 0
        self.errors = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._closing = asyncio.Event()

    @property
    def port(self) -> int:
        assert self._server is not None, "backend not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        return self.port

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._closing.wait()

    async def stop(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await http11.read_request(reader)
            if request is None:
                return
            response = await self._dispatch(request)
            writer.write(response)
            await writer.drain()
        except (http11.HTTPError, ConnectionError, asyncio.IncompleteReadError):
            self.errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: http11.Request) -> bytes:
        path = request.path
        if request.method == "GET" and path.startswith("/f/"):
            return await self._serve_file(request)
        if request.method == "GET" and path == "/health":
            body = json.dumps(
                {"node": self.node_id, "incarnation": self.incarnation}
            ).encode()
            return http11.render_response(
                200, body, {"Content-Type": "application/json"}
            )
        if request.method == "GET" and path == "/stats":
            return http11.render_response(
                200,
                json.dumps(self.stats()).encode(),
                {"Content-Type": "application/json"},
            )
        if request.method == "POST" and path == "/warm":
            self._warm(json.loads(request.body))
            return http11.render_response(200, b"ok")
        if request.method == "POST" and path == "/reset":
            self.reset_meters()
            return http11.render_response(200, b"ok")
        if request.method == "POST" and path == "/shutdown":
            # Arrange the event after the response is written.
            asyncio.get_running_loop().call_soon(self._closing.set)
            return http11.render_response(200, b"bye")
        return http11.render_response(404, b"not found")

    async def _serve_file(self, request: http11.Request) -> bytes:
        try:
            fid = int(request.path[len("/f/"):])
        except ValueError:
            return http11.render_response(400, b"bad file id")
        forward_port = request.headers.get("x-forward-port")
        if forward_port is not None:
            return await self._relay(fid, int(forward_port))
        size = self.sizes.get(fid)
        if size is None:
            return http11.render_response(404, b"no such file")
        if self.cache.lookup(fid):
            body = self._content[fid]
            cached = "HIT"
        else:
            body = await self._read_from_disk(fid, size)
            for evicted in self.cache.insert(fid, max(1, size)):
                self._content.pop(evicted, None)
            if fid in self.cache:
                self._content[fid] = body
            cached = "MISS"
        self.served += 1
        return http11.render_response(
            200,
            body,
            {"X-Cache": cached, "X-Node": str(self.node_id)},
        )

    def _warm(self, fids: list) -> None:
        """Zero-time cache warm: replay a fid sequence into the LRU.

        The live twin of the simulator's ``_prewarm`` for strictly-local
        policies (each node's cache replays the whole trace once).  No
        hit/miss accounting; content is zero bytes, identical to what a
        disk read of the sparse files returns.
        """
        for fid in fids:
            fid = int(fid)
            size = self.sizes.get(fid)
            if size is None:
                continue
            if self.cache.touch(fid):
                continue
            for evicted in self.cache.insert(fid, max(1, size)):
                self._content.pop(evicted, None)
            if fid in self.cache:
                self._content[fid] = b"\x00" * size

    async def _read_from_disk(self, fid: int, size: int) -> bytes:
        path = self.root / file_name(fid)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, path.read_bytes)

    async def _relay(self, fid: int, target_port: int) -> bytes:
        """Hand-off: fetch ``fid`` from the target node and relay it.

        The initial node does NOT cache relayed content (the simulator's
        handed-off requests likewise only touch the target's cache).
        """
        reader, writer = await asyncio.open_connection(self.host, target_port)
        try:
            writer.write(http11.render_request("GET", f"/f/{fid}"))
            await writer.drain()
            response = await http11.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self.relayed += 1
        headers = {
            "X-Cache": response.headers.get("x-cache", "MISS"),
            "X-Node": response.headers.get("x-node", "?"),
            "X-Handoff": "1",
        }
        return http11.render_response(response.status, response.body, headers)

    # -- meters ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "node": self.node_id,
            "served": self.served,
            "relayed": self.relayed,
            "errors": self.errors,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_insertions": self.cache.insertions,
            "cache_evictions": self.cache.evictions,
            "cache_used_bytes": self.cache.used_bytes,
            "cache_files": len(self.cache),
        }

    def reset_meters(self) -> None:
        """Zero counters at the warmup boundary; cache content survives."""
        self.served = 0
        self.relayed = 0
        self.errors = 0
        self.cache.reset_stats()


async def _run(args: argparse.Namespace) -> None:
    server = BackendServer(
        node_id=args.node,
        root=Path(args.root),
        cache_bytes=args.cache_bytes,
        host=args.host,
        incarnation=args.incarnation,
    )
    port = await server.start(args.port)
    # Handshake line the parent process waits for.
    print(f"REPRO-LIVE-BACKEND node={args.node} port={port}", flush=True)
    await server.serve_until_shutdown()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.backend",
        description="One repro.live back-end worker process.",
    )
    parser.add_argument("--node", type=int, required=True, help="node id")
    parser.add_argument("--root", required=True, help="materialized fileset dir")
    parser.add_argument(
        "--cache-bytes", type=int, required=True, help="LRU cache capacity"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--incarnation", type=int, default=0,
        help="respawn generation, reported by /health",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
