"""Run a chaos :class:`~repro.chaos.spec.Scenario` on the live cluster.

The bridge between :mod:`repro.chaos` and :mod:`repro.live`: one
serializable scenario file drives *both* substrates —

* the **sim** side runs exactly what ``repro chaos replay`` runs
  (same trace synthesis + flash rewrite, same policy construction,
  same fault/netfault expansion, same retry budget), with the
  multiprogramming level aligned to the loadtest concurrency the way
  ``repro live compare`` aligns clean runs;
* the **live** side boots a process cluster in chaos mode (proxies,
  health probes, resilience front-end), replays the same arrival
  sequence, and lets a :class:`~repro.live.faultproxy.LiveFaultInjector`
  execute the plan's live actions at matching workload-progress points;

then scores measured availability, hit ratio, and hand-off fraction
against the sim's prediction through the same
:class:`~repro.live.compare.CompareReport`.  Divergence beyond the
thresholds means one of the two worlds mis-models failure — the
ROADMAP's sim-to-real bug-finder, now covering the faulted regime.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..chaos.runner import build_overload, build_policy, build_trace
from ..cluster import ClusterConfig
from ..faults import RetryPolicy
from ..sim.driver import Simulation
from ..sim.results import SimResult
from .cluster import MB, LiveCluster, LiveClusterConfig
from .compare import CompareReport
from .engine import LiveUnsupported
from .faultproxy import LiveFaultInjector, ResilienceConfig
from .loadtest import LoadTestConfig, Replay
from .timeline import LiveAvailabilityTimeline

__all__ = ["LiveChaosOutcome", "run_live_scenario"]

#: Acceptance threshold on |live - sim| whole-run availability (which,
#: on these books, is the goodput fraction: completions per offered
#: request).
AVAILABILITY_THRESHOLD = 0.15

#: Acceptance threshold on |live - sim| shed fraction (overload runs).
SHED_THRESHOLD = 0.15

#: Per-attempt front-end fetch timeout under chaos.  Short enough that
#: a SIGSTOPped worker burns one attempt, not the client's patience.
CHAOS_ATTEMPT_TIMEOUT_S = 2.0


@dataclass(frozen=True)
class LiveChaosOutcome:
    """One scenario executed on both substrates, scored side by side."""

    scenario: object
    report: CompareReport
    timeline: LiveAvailabilityTimeline
    #: Live fault actions actually executed: (trigger_frac, action, node).
    executed: Tuple[Tuple[float, str, int], ...]

    @property
    def sim(self) -> SimResult:
        return self.report.sim

    @property
    def live(self) -> SimResult:
        return self.report.live

    @property
    def passed(self) -> bool:
        return self.report.within_thresholds()

    def render(self) -> str:
        lines = [self.scenario.describe()]
        if self.executed:
            acts = ", ".join(
                f"{action}({node})@{frac:.2f}"
                for frac, action, node in self.executed
            )
            lines.append(f"live actions executed: {acts}")
        else:
            lines.append("live actions executed: (none)")
        summary = self.live.netfault_summary.get("live", {})
        lines.append(
            "live resilience: "
            f"retries={self.live.requests_retried} "
            f"shed={self.live.requests_shed} "
            f"client_timeouts={summary.get('client_timeouts', 0)} "
            f"markdowns={summary.get('health', {}).get('markdowns', 0)} "
            f"markups={summary.get('health', {}).get('markups', 0)}"
        )
        lines.append(self.report.render())
        lines.append("")
        lines.append("availability timeline (live):")
        lines.append(self.timeline.render())
        return "\n".join(lines)


def run_sim_side(scenario, concurrency: int = 16) -> SimResult:
    """The sim's prediction for this scenario at the live operating point.

    Identical to :func:`repro.chaos.runner.run_scenario`'s setup except
    the multiprogramming level mirrors the loadtest concurrency, exactly
    as the clean-run compare does.
    """
    trace = build_trace(scenario)
    config = ClusterConfig(
        nodes=scenario.nodes,
        cache_bytes=scenario.cache_mb * MB,
        net_faults=scenario.netfault_config(),
        multiprogramming_per_node=max(1, concurrency // scenario.nodes),
    )
    return Simulation(
        trace,
        build_policy(scenario),
        config,
        warmup_fraction=0.1,
        passes=1,
        seed=scenario.seed,
        faults=scenario.fault_schedule(),
        retry=RetryPolicy(max_retries=scenario.retries),
        overload=build_overload(scenario),
    ).run()


async def run_live_side(
    scenario,
    root: Path,
    concurrency: int = 16,
) -> Tuple[SimResult, LiveAvailabilityTimeline, Tuple]:
    """Execute the scenario against a real process cluster."""
    trace = build_trace(scenario)
    rates = scenario.live_rates()
    cluster = LiveCluster(
        build_policy(scenario),
        trace,
        LiveClusterConfig(
            nodes=scenario.nodes,
            cache_bytes=scenario.cache_mb * MB,
            backend_mode="process",
            root=root,
        ),
    )
    cluster.enable_chaos(
        seed=scenario.seed,
        loss=rates["loss"],
        delay_s=rates["delay_s"],
        jitter_s=rates["jitter_s"],
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_retries=scenario.retries),
            request_timeout_s=CHAOS_ATTEMPT_TIMEOUT_S,
        ),
    )
    # A *fresh* controller (never the sim side's instance — both
    # accumulate counters), built from the same spec scalars.
    cluster.overload = build_overload(scenario)
    await cluster.start()
    timeline = LiveAvailabilityTimeline(cluster)
    replay = Replay(
        cluster,
        trace,
        # Mirror the chaos runner's single-pass, 10%-warmup shape so the
        # fault windows land in the same region of the request stream.
        LoadTestConfig(
            concurrency=concurrency,
            passes=1,
            warmup_fraction=0.1,
            seed=scenario.seed,
        ),
    )
    replay.timeline = timeline
    assert cluster.frontend is not None
    cluster.frontend.timeline = timeline
    injector = LiveFaultInjector(
        cluster,
        scenario.live_schedule(),
        replay.progress,
        on_event=timeline.mark_event,
    )
    timeline.start()
    injector.start()
    try:
        result = await replay.run()
    finally:
        await injector.finish()
        await timeline.stop()
        await cluster.stop()
    return result, timeline, tuple(injector.executed)


def run_live_scenario(
    scenario,
    root: Optional[Path] = None,
    concurrency: int = 16,
    availability_threshold: float = AVAILABILITY_THRESHOLD,
    shed_threshold: float = SHED_THRESHOLD,
) -> LiveChaosOutcome:
    """Run ``scenario`` on sim and live; return the scored outcome.

    Raises :class:`~repro.live.engine.LiveUnsupported` when the scenario
    contains plan items or a policy with no live equivalent — refusing
    loudly instead of silently dropping faults.
    """
    unsupported = scenario.live_unsupported()
    if unsupported:
        raise LiveUnsupported(
            "scenario has no live equivalent:\n  " + "\n  ".join(unsupported)
        )
    sim = run_sim_side(scenario, concurrency=concurrency)
    if root is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-live-chaos-") as tmp:
            live, timeline, executed = asyncio.run(
                run_live_side(scenario, Path(tmp), concurrency=concurrency)
            )
    else:
        live, timeline, executed = asyncio.run(
            run_live_side(scenario, Path(root), concurrency=concurrency)
        )
    problems: List[str] = list(live.verify())
    report = CompareReport(
        sim=sim,
        live=live,
        problems=tuple(problems),
        availability_threshold=availability_threshold,
        shed_threshold=shed_threshold,
    )
    return LiveChaosOutcome(
        scenario=scenario,
        report=report,
        timeline=timeline,
        executed=executed,
    )
