"""Wall-clock implementation of the policy :class:`~repro.servers.Clock`.

This is the one place in the repository where reading real time is the
*point*: live policies age server sets and timestamp load views against
the seconds actual TCP connections take.  simlint's REP003 explicitly
permits wall-clock reads inside ``repro.live`` (and only here — kernel,
sim, and chaos scopes still forbid them; see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import time

__all__ = ["WallClock"]


class WallClock:
    """Monotonic wall clock reporting seconds since its creation.

    Starting at zero (rather than the raw ``time.monotonic()`` epoch)
    keeps live timestamps in the same "small seconds since the run
    began" range the DES produces, so policy parameters expressed in
    seconds (LARD's 20 s server-set aging, L2S's staleness bounds) mean
    the same thing in both worlds.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0
