"""``repro.live`` — a real asyncio cluster driven by the simulator's policies.

The simulator's distribution policies (:mod:`repro.servers`) are pure
logic behind the :class:`~repro.servers.Clock` / cluster-surface
interface.  This package is the second execution substrate for that
logic: an HTTP/1.1 front-end (hand-rolled over ``asyncio.start_server``,
like the paper's event-driven servers) that admits real TCP requests and
consults the *same policy objects* the DES runs, dispatching to back-end
worker processes that serve a materialized file set from disk through
the *same* :class:`~repro.cluster.cache.LRUFileCache` the simulated
nodes use.

Everything is stdlib ``asyncio`` — no new runtime dependencies.

Layers
------
:mod:`repro.live.engine`
    :class:`PolicyEngine` — binds a ``DistributionPolicy`` to a live
    membership view (open-connection counts, failure marks) and a
    zero-latency local control plane, with a wall clock as the injected
    time source.
:mod:`repro.live.backend`
    One back-end worker: LRU-cached file service plus the TCP hand-off
    relay (``python -m repro.live.backend`` runs it as a process).
:mod:`repro.live.frontend`
    The front-end: parses HTTP/1.1, routes through the PolicyEngine,
    hands forwarded requests to the *initial* node which relays them to
    the target over a second TCP connection — mirroring the simulator's
    hand-off accounting with real sockets.
:mod:`repro.live.cluster`
    :class:`LiveCluster` — materializes the file set, boots the
    back-ends (subprocesses by default), wires the front-end.
:mod:`repro.live.loadtest`
    Replays the *identical* arrival sequence the sim driver injects
    (``Trace.replay_ids``) and emits a ``SimResult``-compatible object.
:mod:`repro.live.compare`
    Runs sim and live on the same (trace, policy, node-count) point and
    reports structural divergence against thresholds.
:mod:`repro.live.faultproxy`
    Live fault injection: per-node TCP chaos proxies (loss/delay/jitter/
    link_out), health probes with mark-down/mark-up, and the
    :class:`LiveFaultInjector` that executes a chaos
    :class:`~repro.chaos.spec.Scenario`'s plan with real signals
    (SIGKILL/SIGSTOP/SIGCONT + incarnation-bumped respawn).
:mod:`repro.live.timeline`
    :class:`LiveAvailabilityTimeline` — the sim's availability
    instrument sampled from an asyncio task, same rows/CSV/render.
:mod:`repro.live.chaos`
    ``repro live chaos``: one scenario file, both substrates, one
    availability/hit-ratio/hand-off scorecard.

See ``docs/LIVE.md`` for the architecture, the resilience layer, and
the known sim-vs-live gaps.
"""

from .chaos import LiveChaosOutcome, run_live_scenario
from .clock import WallClock
from .compare import CompareReport, run_compare
from .cluster import LiveCluster, LiveClusterConfig
from .engine import LiveUnsupported, PolicyEngine, RouteOutcome
from .faultproxy import (
    ChaosProxy,
    HealthMonitor,
    LiveFaultInjector,
    ResilienceConfig,
)
from .loadtest import LoadTestConfig, Replay, run_loadtest
from .timeline import LiveAvailabilityTimeline

__all__ = [
    "WallClock",
    "PolicyEngine",
    "RouteOutcome",
    "LiveUnsupported",
    "LiveCluster",
    "LiveClusterConfig",
    "LoadTestConfig",
    "Replay",
    "run_loadtest",
    "CompareReport",
    "run_compare",
    "ChaosProxy",
    "HealthMonitor",
    "LiveFaultInjector",
    "ResilienceConfig",
    "LiveAvailabilityTimeline",
    "LiveChaosOutcome",
    "run_live_scenario",
]
