"""``repro live`` — serve, loadtest, and compare on the live substrate.

Subcommands
-----------
``repro live serve TRACE [--policy P] [--nodes N] [--port PORT]``
    Boot a localhost cluster (front-end + back-end workers) and serve
    until interrupted.  Useful for poking the cluster with curl.
``repro live loadtest TRACE [--policy P] [--nodes N] [--passes K]``
    Boot a cluster, replay the trace through it (same arrival sequence
    as the simulator), print the ``SimResult`` summary, tear down.
``repro live compare --trace TRACE --policy P [--nodes N]``
    Run the simulator and the live cluster on the identical point and
    print the divergence report; exits nonzero when a structural metric
    (cache hit ratio, hand-off fraction) diverges beyond threshold.
``repro live chaos --spec SCENARIO.json``
    Execute a chaos scenario file on BOTH substrates: the sim runs it
    exactly as ``repro chaos replay`` would, the live cluster runs it
    with real SIGKILL/SIGSTOP faults and chaos proxies, and the report
    scores measured availability / hit ratio / hand-off against the sim
    prediction.  Exits nonzero on divergence or a conservation failure.

TRACE is a preset name (calgary|clarknet|nasa|rutgers) or a ``.npz``
file saved with ``Trace.save``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]

MB = 1024 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro live",
        description="Live asyncio cluster driven by the simulator's policies.",
    )
    sub = parser.add_subparsers(dest="live_command", required=True)

    def common(p: argparse.ArgumentParser, default_requests: int) -> None:
        p.add_argument(
            "--policy", default="lard",
            help="l2s|lard|traditional|round-robin|consistent-hash "
            "(default lard; lard-ng is sim-only)",
        )
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--memory", type=int, default=32, help="MB per node")
        p.add_argument(
            "--requests", type=int, default=default_requests,
            help="synthesized trace length (ignored for .npz traces)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--root", default=None,
            help="directory for the materialized file set "
            "(default: a temporary directory)",
        )
        p.add_argument(
            "--backend-mode", choices=("process", "inline"), default="process",
            help="back-ends as subprocesses (default) or in-process",
        )

    p_serve = sub.add_parser("serve", help="boot a cluster and serve")
    p_serve.add_argument("trace", help="preset name or .npz trace")
    common(p_serve, default_requests=2000)
    p_serve.add_argument(
        "--port", type=int, default=0, help="front-end port (0 = ephemeral)"
    )

    p_load = sub.add_parser("loadtest", help="replay a trace against a cluster")
    p_load.add_argument("trace", help="preset name or .npz trace")
    common(p_load, default_requests=2000)
    p_load.add_argument("--concurrency", type=int, default=16)
    p_load.add_argument(
        "--passes", type=int, default=2,
        help="trace replays; first passes-1 warm caches (default 2)",
    )
    p_load.add_argument(
        "--rate", type=float, default=None,
        help="open-loop Poisson arrival rate (req/s); default closed loop",
    )

    p_cmp = sub.add_parser("compare", help="sim vs live on one point")
    p_cmp.add_argument(
        "--trace", required=True, help="preset name or .npz trace"
    )
    p_cmp.add_argument("--policy", default="lard")
    p_cmp.add_argument("--nodes", type=int, default=4)
    p_cmp.add_argument("--memory", type=int, default=32, help="MB per node")
    p_cmp.add_argument("--requests", type=int, default=2000)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--concurrency", type=int, default=16)
    p_cmp.add_argument("--passes", type=int, default=2)
    p_cmp.add_argument(
        "--backend-mode", choices=("process", "inline"), default="process"
    )
    p_cmp.add_argument(
        "--root", default=None,
        help="directory for the materialized file set "
        "(default: a temporary directory)",
    )
    p_cmp.add_argument(
        "--hit-threshold", type=float, default=None,
        help="max |live - sim| cache hit ratio (default 0.12)",
    )
    p_cmp.add_argument(
        "--handoff-threshold", type=float, default=None,
        help="max |live - sim| hand-off fraction (default 0.15)",
    )

    p_chaos = sub.add_parser(
        "chaos", help="run a chaos Scenario live and score vs the sim"
    )
    p_chaos.add_argument(
        "--spec", required=True, help="scenario JSON file (repro chaos format)"
    )
    p_chaos.add_argument("--concurrency", type=int, default=16)
    p_chaos.add_argument(
        "--root", default=None,
        help="directory for the materialized file set "
        "(default: a temporary directory)",
    )
    p_chaos.add_argument(
        "--availability-threshold", type=float, default=None,
        help="max |live - sim| whole-run availability (default 0.15)",
    )
    p_chaos.add_argument(
        "--csv", default=None,
        help="write the live availability timeline to this CSV file",
    )
    return parser


def _load_trace(spec: str, requests: Optional[int], seed: int):
    from ..workload import Trace, synthesize

    if spec.endswith(".npz") or Path(spec).exists():
        return Trace.load(spec)
    return synthesize(spec, num_requests=requests, seed=seed)


def _build_cluster(args: argparse.Namespace, trace):
    from ..servers import make_policy
    from .cluster import LiveCluster, LiveClusterConfig

    import tempfile

    root = args.root
    cleanup = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
        root, cleanup = tmp.name, tmp
    cluster = LiveCluster(
        make_policy(args.policy),
        trace,
        LiveClusterConfig(
            nodes=args.nodes,
            cache_bytes=args.memory * MB,
            backend_mode=args.backend_mode,
            root=Path(root),
        ),
    )
    return cluster, cleanup


def _cmd_serve(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace, args.requests, args.seed)

    async def run() -> None:
        cluster, cleanup = _build_cluster(args, trace)
        port = await cluster.start()
        if args.port:
            # Re-home the front-end on the requested port.
            await cluster.frontend.stop()
            port = await cluster.frontend.start(args.port)
        print(
            f"repro live: {args.policy} x {args.nodes} nodes "
            f"({args.memory} MB cache each), trace {trace.name}"
        )
        print(f"  front-end http://{cluster.config.host}:{port}/f/<fid>")
        for node, bport in enumerate(cluster.backend_ports):
            print(f"  back-end {node} on port {bport}")
        print("Ctrl-C to stop.")
        try:
            await asyncio.Event().wait()
        finally:
            await cluster.stop()
            if cleanup is not None:
                cleanup.cleanup()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped.")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .loadtest import LoadTestConfig, run_loadtest

    trace = _load_trace(args.trace, args.requests, args.seed)

    async def run():
        cluster, cleanup = _build_cluster(args, trace)
        await cluster.start()
        try:
            return await run_loadtest(
                cluster,
                trace,
                LoadTestConfig(
                    concurrency=args.concurrency,
                    passes=args.passes,
                    arrival_rate=args.rate,
                ),
            )
        finally:
            await cluster.stop()
            if cleanup is not None:
                cleanup.cleanup()

    result = asyncio.run(run())
    print(result.summary_row())
    if result.latency_percentiles:
        p = result.latency_percentiles
        print(
            f"  latency p50={p['p50'] * 1000:.1f}ms p90={p['p90'] * 1000:.1f}ms "
            f"p99={p['p99'] * 1000:.1f}ms max={p['max'] * 1000:.1f}ms"
        )
    problems = result.verify()
    for problem in problems:
        print(f"verify: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .compare import HANDOFF_THRESHOLD, HIT_RATIO_THRESHOLD, run_compare

    trace = _load_trace(args.trace, args.requests, args.seed)
    report = run_compare(
        trace,
        args.policy,
        nodes=args.nodes,
        cache_bytes=args.memory * MB,
        passes=args.passes,
        concurrency=args.concurrency,
        backend_mode=args.backend_mode,
        root=Path(args.root) if getattr(args, "root", None) else None,
        hit_ratio_threshold=(
            args.hit_threshold
            if args.hit_threshold is not None
            else HIT_RATIO_THRESHOLD
        ),
        handoff_threshold=(
            args.handoff_threshold
            if args.handoff_threshold is not None
            else HANDOFF_THRESHOLD
        ),
    )
    print(report.render())
    return 0 if report.within_thresholds() else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from ..chaos.spec import Scenario
    from .chaos import AVAILABILITY_THRESHOLD, run_live_scenario
    from .engine import LiveUnsupported

    scenario = Scenario.load(args.spec)
    try:
        outcome = run_live_scenario(
            scenario,
            root=Path(args.root) if args.root else None,
            concurrency=args.concurrency,
            availability_threshold=(
                args.availability_threshold
                if args.availability_threshold is not None
                else AVAILABILITY_THRESHOLD
            ),
        )
    except LiveUnsupported as exc:
        print(f"repro live chaos: {exc}", file=sys.stderr)
        return 2
    print(outcome.render())
    if args.csv:
        Path(args.csv).write_text(outcome.timeline.to_csv(), encoding="utf-8")
        print(f"wrote timeline to {args.csv}")
    return 0 if outcome.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.live_command == "serve":
        return _cmd_serve(args)
    if args.live_command == "loadtest":
        return _cmd_loadtest(args)
    if args.live_command == "compare":
        return _cmd_compare(args)
    if args.live_command == "chaos":
        return _cmd_chaos(args)
    raise AssertionError(f"unhandled command {args.live_command!r}")


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
