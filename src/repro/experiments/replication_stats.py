"""Multi-seed replication: means and confidence intervals.

Every simulated number in this repository is a single deterministic run
of one synthesized trace.  :func:`replicate` reruns an experiment over
several seeds (new trace realization each time) and reports mean,
standard deviation, and a t-based confidence interval — the error bars
behind the headline comparisons (see ``benchmarks/test_replication.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Callable, List, Optional, Sequence

from scipy import stats as scipy_stats

from ..sim import SimResult, run_simulation
from ..workload import synthesize
from .figures import bench_requests

__all__ = ["ReplicatedMetric", "replicate", "replicate_throughput"]


@dataclass(frozen=True)
class ReplicatedMetric:
    """Summary of one metric across seeds."""

    name: str
    values: tuple
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def half_width(self) -> float:
        """Half-width of the t confidence interval around the mean."""
        if self.n < 2:
            return 0.0
        t = scipy_stats.t.ppf(0.5 + self.confidence / 2.0, df=self.n - 1)
        return float(t * self.stdev / sqrt(self.n))

    @property
    def interval(self) -> tuple:
        h = self.half_width
        return (self.mean - h, self.mean + h)

    @property
    def relative_half_width(self) -> float:
        return self.half_width / self.mean if self.mean else 0.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:,.1f} ± {self.half_width:,.1f} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


def replicate(
    metric_fn: Callable[[int], float],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    name: str = "metric",
    confidence: float = 0.95,
) -> ReplicatedMetric:
    """Evaluate ``metric_fn(seed)`` over seeds and summarize."""
    if len(seeds) < 1:
        raise ValueError("at least one seed is required")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    values = tuple(float(metric_fn(seed)) for seed in seeds)
    return ReplicatedMetric(name=name, values=values, confidence=confidence)


def replicate_throughput(
    trace_name: str,
    policy: str,
    nodes: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    num_requests: Optional[int] = None,
    confidence: float = 0.95,
) -> ReplicatedMetric:
    """Throughput of one server design across seeded trace realizations."""
    requests = num_requests if num_requests is not None else bench_requests()

    def one(seed: int) -> float:
        trace = synthesize(trace_name, num_requests=requests, seed=seed)
        return run_simulation(trace, policy, nodes=nodes, passes=2).throughput_rps

    return replicate(
        one, seeds=seeds, name=f"{policy}@{trace_name}x{nodes}", confidence=confidence
    )
