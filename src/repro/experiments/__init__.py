"""``repro.experiments`` — one entry point per paper table and figure.

See DESIGN.md's experiment index: T1/T2 map to :mod:`tables`, F3–F10 to
:mod:`figures`, and the in-text results (M1, M2, S1–S4) plus this repo's
own ablations to :mod:`extra`.  ``benchmarks/`` drives each of these with
one pytest-benchmark target.
"""

from .availability import (
    AvailabilityResult,
    FaultRecoveryResult,
    availability_experiment,
    fault_recovery_experiment,
    run_fault_simulation,
)
from .flashcrowd import (
    FlashCrowdResult,
    flash_crowd_experiment,
    flash_crowd_trace,
    pick_hot_rank,
)
from .latency import LoadPoint, latency_vs_load, model_latency_validation
from .netfault import (
    NetFaultCell,
    NetFaultReport,
    netfault_experiment,
    run_netfault_simulation,
)
from .sensitivity import (
    broadcast_frequency_sweep,
    message_overhead_sweep,
    network_bandwidth_sweep,
    relative_spread,
)
from .extra import (
    dfs_ablation,
    l2s_variant_ablation,
    model_memory_sensitivity,
    model_replication_sweep,
    mpl_ablation,
    sim_memory_sensitivity,
)
from .figures import (
    DEFAULT_NODE_COUNTS,
    DEFAULT_SYSTEMS,
    ScalingExperiment,
    bench_requests,
    model_figures,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    scaling_experiment,
)
from .overload import (
    OverloadFrontier,
    OverloadPoint,
    find_knee,
    overload_frontier,
)
from .report import render_series, render_surface, render_table
from .tables import render_table1, render_table2, table1_rows, table2_rows

__all__ = [
    "AvailabilityResult",
    "availability_experiment",
    "FaultRecoveryResult",
    "fault_recovery_experiment",
    "run_fault_simulation",
    "LoadPoint",
    "latency_vs_load",
    "model_latency_validation",
    "NetFaultCell",
    "NetFaultReport",
    "netfault_experiment",
    "run_netfault_simulation",
    "FlashCrowdResult",
    "flash_crowd_experiment",
    "flash_crowd_trace",
    "pick_hot_rank",
    "OverloadFrontier",
    "OverloadPoint",
    "find_knee",
    "overload_frontier",
    "broadcast_frequency_sweep",
    "message_overhead_sweep",
    "network_bandwidth_sweep",
    "relative_spread",
    "model_figures",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "ScalingExperiment",
    "scaling_experiment",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_SYSTEMS",
    "bench_requests",
    "table1_rows",
    "table2_rows",
    "render_table1",
    "render_table2",
    "model_memory_sensitivity",
    "model_replication_sweep",
    "sim_memory_sensitivity",
    "mpl_ablation",
    "dfs_ablation",
    "l2s_variant_ablation",
    "render_table",
    "render_series",
    "render_surface",
]
