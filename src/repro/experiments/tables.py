"""Reproduction of the paper's tables.

Table 1 (model parameters and defaults) is rendered straight from
:class:`~repro.model.ModelParameters`; Table 2 (trace characteristics)
compares the published numbers against the measured characteristics of
our synthesized traces — the check that the workload substitution holds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..model import ModelParameters
from ..workload import TRACE_ORDER, preset, synthesize
from .report import render_table

__all__ = ["table1_rows", "render_table1", "table2_rows", "render_table2"]


def table1_rows(params: Optional[ModelParameters] = None) -> List[Tuple[str, str, str]]:
    """(parameter, description, default) rows of Table 1."""
    p = params if params is not None else ModelParameters()
    return [
        ("N", "Number of nodes", f"{p.nodes}"),
        ("R", "Percentage of replication", f"{p.replication:.0%}"),
        ("alpha", "Zipf constant", f"{p.alpha:g}"),
        ("mu_r", "Routing rate", f"{p.router_kb_per_s:,.0f}/size ops/s"),
        ("mu_i", "Request service rate at NI", f"{p.ni_request_rate:,.0f} ops/s"),
        ("mu_p", "Request read/parsing rate", f"{p.parse_rate:,.0f} ops/s"),
        ("mu_f", "Request forwarding rate", f"{p.forward_rate:,.0f} ops/s"),
        (
            "mu_m",
            "Reply rate (after stored locally)",
            f"(%.4f + S/%.0f)^-1 ops/s" % (p.reply_overhead_s, p.reply_kb_per_s),
        ),
        (
            "mu_d",
            "Disk access rate",
            f"(%.3f + S/%.0f)^-1 ops/s" % (p.disk_access_s, p.disk_kb_per_s),
        ),
        (
            "mu_o",
            "Reply service rate at NI",
            f"(%.6f + S/%.0f)^-1 ops/s" % (p.ni_overhead_s, p.ni_kb_per_s),
        ),
        ("C", "Total cache space per node", f"{p.cache_bytes // (1024*1024)} MBytes"),
    ]


def render_table1(params: Optional[ModelParameters] = None) -> str:
    return render_table(
        ["Param", "Description", "Default value"], table1_rows(params)
    )


def table2_rows(
    num_requests: Optional[int] = None,
    traces: Sequence[str] = TRACE_ORDER,
    seed: int = 0,
) -> List[Tuple]:
    """Paper-vs-synthesized Table 2 rows.

    Each trace contributes two rows: the published characteristics and
    the measured characteristics of the synthetic workload (empirical
    requested-size mean; file count / file-size mean / alpha by
    construction).
    """
    rows: List[Tuple] = []
    for name in traces:
        p = preset(name)
        rows.append(
            ("paper", p.name, p.num_files, p.avg_file_kb, p.num_requests, p.avg_request_kb, p.alpha)
        )
        t = synthesize(name, num_requests=num_requests, seed=seed)
        s = t.stats()
        rows.append(
            (
                "synthetic",
                t.name,
                s.num_files,
                round(s.avg_file_kb, 1),
                s.num_requests,
                round(s.avg_request_kb, 1),
                s.alpha,
            )
        )
    return rows


def render_table2(num_requests: Optional[int] = None) -> str:
    return render_table(
        ["Source", "Log", "Num files", "Avg file KB", "Num requests", "Avg req KB", "alpha"],
        table2_rows(num_requests=num_requests),
    )
