"""Flash-crowd experiment: a sudden hot-file spike (extension).

The era's nightmare scenario — one page gets slashdotted and most of
the traffic converges on a single file.  This is precisely the case the
paper's replication machinery exists for: L2S notices the hot node
blowing past its overload threshold and replicates the file across the
cluster; LARD/R does the same from its front-end.  Designs without
dynamic replication (consistent hashing, LARD with replication
disabled) leave the file pinned to one node, which saturates while the
rest idle.

:func:`flash_crowd_trace` rewrites a window of an ordinary trace so a
``hot_share`` of its requests hit one (small, cacheable) file;
:func:`flash_crowd_experiment` measures throughput inside vs outside
the spike window from the completion timeline.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import ClusterConfig
from ..servers import DistributionPolicy, make_policy
from ..sim import Simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = ["FlashCrowdResult", "flash_crowd_trace", "flash_crowd_experiment"]


def pick_hot_rank(trace: Trace) -> int:
    """A viral-page candidate: size near the trace's mean requested size.

    Popular ranks are small files by construction, so picking e.g. rank
    50 would make spike requests *cheaper* than average and mask the
    hotspot.  Search moderately warm ranks for a representative size.
    """
    sizes = trace.fileset.sizes
    target = trace.mean_request_bytes()
    lo, hi = 20, min(500, trace.fileset.num_files)
    ranks = np.arange(lo, hi)
    return int(ranks[np.argmin(np.abs(sizes[lo:hi] - target))])


def flash_crowd_trace(
    base: Trace,
    spike_start: float = 0.4,
    spike_length: float = 0.3,
    hot_share: float = 0.6,
    hot_rank: Optional[int] = None,
    seed: int = 0,
) -> Trace:
    """Rewrite a window of ``base`` so one file dominates it.

    Within requests ``[spike_start, spike_start + spike_length)`` (as
    fractions of the trace), each request is redirected to the file of
    popularity rank ``hot_rank`` with probability ``hot_share`` — a
    modestly popular page suddenly going viral.  ``hot_rank=None`` picks
    a file of representative size (see :func:`pick_hot_rank`).
    """
    if not 0.0 <= spike_start < 1.0:
        raise ValueError("spike_start must be in [0, 1)")
    if not 0.0 < spike_length <= 1.0 - spike_start:
        raise ValueError("spike window must fit inside the trace")
    if not 0.0 < hot_share <= 1.0:
        raise ValueError("hot_share must be in (0, 1]")
    if hot_rank is None:
        hot_rank = pick_hot_rank(base)
    if not 0 <= hot_rank < base.fileset.num_files:
        raise IndexError("hot_rank outside the file population")
    n = len(base)
    lo = int(n * spike_start)
    hi = int(n * (spike_start + spike_length))
    rng = np.random.default_rng(seed)
    ids = base.file_ids.copy()
    window = slice(lo, hi)
    mask = rng.random(hi - lo) < hot_share
    ids[window] = np.where(mask, hot_rank, ids[window])
    return Trace(f"{base.name}+flash", base.fileset, ids)


@dataclass(frozen=True)
class FlashCrowdResult:
    """Throughput inside and outside the spike window."""

    policy: str
    nodes: int
    baseline_rps: float
    spike_rps: float
    hot_server_count: int

    @property
    def spike_retention(self) -> float:
        """Spike-window throughput relative to baseline (1.0 = unfazed)."""
        if self.baseline_rps <= 0:
            return 0.0
        return self.spike_rps / self.baseline_rps


def flash_crowd_experiment(
    policy,
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    hot_share: float = 0.6,
    num_requests: Optional[int] = None,
) -> FlashCrowdResult:
    """Measure one policy through a mid-trace flash crowd.

    ``policy`` may be a name or instance.  The spike occupies the middle
    30% of the measured pass; rates are computed from the completion
    timeline with a small settle margin around the window edges.
    """
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    hot_rank = pick_hot_rank(trace)
    flash = flash_crowd_trace(trace, hot_share=hot_share, hot_rank=hot_rank)
    if isinstance(policy, str):
        policy = make_policy(policy)
    assert isinstance(policy, DistributionPolicy)
    sim = Simulation(
        flash, policy, ClusterConfig(nodes=nodes), passes=2, record_timeline=True
    )
    sim.run()

    times = sim.completion_times
    n = len(flash)
    lo, hi = int(n * 0.4), int(n * 0.7)
    settle = max(1, n // 50)
    t = lambda k: times[min(max(k, 0), len(times) - 1)]

    def rate(first: int, last: int) -> float:
        t0, t1 = t(first), t(last)
        return (last - first) / (t1 - t0) if t1 > t0 else 0.0

    spike = rate(lo + settle, hi - settle)
    before = rate(settle, lo - settle)
    after = rate(hi + settle, n - 1)
    baseline = (before + after) / 2.0

    hot_servers = 1
    if hasattr(policy, "server_set"):
        hot_servers = max(1, len(policy.server_set(hot_rank)))
    return FlashCrowdResult(
        policy=policy.name,
        nodes=nodes,
        baseline_rps=baseline,
        spike_rps=spike,
        hot_server_count=hot_servers,
    )
