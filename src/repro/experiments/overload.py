"""Goodput under overload: the admission-control frontier.

The paper measures throughput at saturation — a closed loop that can
never offer more load than the cluster absorbs.  A flash crowd is the
opposite regime: an *open* arrival stream at multiples of capacity,
where every queued request makes every later request slower and a
server without admission control spirals into metastable collapse
(all effort spent on requests already doomed to miss their deadline).

This experiment drives the simulator through that regime:

* :func:`find_knee` measures the saturation knee — the closed-loop
  capacity of the (policy, trace, cluster) point — the paper's own
  methodology, reused as the load yardstick;
* :func:`overload_frontier` replays a flash-ramp trace open-loop at
  1x–4x the knee, once bare and once behind an
  :class:`~repro.overload.AdmissionController` with the AIMD adaptive
  concurrency limit, and reports **goodput** (completions that met the
  deadline, per second), latency percentiles, and shed fraction at
  every offered load.

The acceptance property (pinned by the CI overload-smoke job): beyond
the knee, goodput *with* admission control strictly dominates goodput
without, for every shipped policy — shedding the excess at the front
door keeps the admitted requests fast, while the bare server drags
everyone below the deadline.

The live analog runs the same controller object in the real front end
(``repro live chaos`` on a ramp scenario, ``tests/live/data/ramp.json``);
this module is the sim side of that pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ClusterConfig
from ..overload import OverloadControl
from ..servers import make_policy
from ..sim import Simulation
from ..workload import Trace, synthesize
from ..workload.tracegen import flash_ramp_trace
from .figures import bench_requests

__all__ = [
    "OverloadPoint",
    "OverloadFrontier",
    "find_knee",
    "overload_frontier",
]

#: Offered-load multipliers of the saturation knee (the ISSUE's 1x–4x).
DEFAULT_MULTIPLIERS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)


@dataclass(frozen=True)
class OverloadPoint:
    """One offered-load point of the goodput frontier."""

    #: Offered load as a multiple of the saturation knee.
    multiplier: float
    #: Open-loop Poisson arrival rate (req/s) at this point.
    arrival_rate: float
    #: Whether the admission controller was in front of the cluster.
    admission: bool
    #: Raw completions per second over the measured window.
    throughput_rps: float
    #: Completions that met the deadline, per second — the metric that
    #: collapses under overload and that admission control defends.
    goodput_rps: float
    #: Requests shed per request offered (front door + node thresholds).
    shed_fraction: float
    mean_latency_s: float
    percentiles: Dict[str, float]


@dataclass(frozen=True)
class OverloadFrontier:
    """The with/without-admission frontier for one (policy, trace)."""

    policy: str
    trace: str
    nodes: int
    deadline_s: float
    #: Closed-loop saturation capacity the multipliers scale (req/s).
    knee_rps: float
    bare: Tuple[OverloadPoint, ...]
    controlled: Tuple[OverloadPoint, ...]

    def dominance_holds(self, from_multiplier: float = 2.0) -> bool:
        """True iff controlled goodput strictly beats bare goodput at
        every offered load at or beyond ``from_multiplier`` times the
        knee (below the knee both configurations serve everything and
        ties are expected)."""
        for bare, ctrl in zip(self.bare, self.controlled):
            if bare.multiplier >= from_multiplier - 1e-9:
                if ctrl.goodput_rps <= bare.goodput_rps:
                    return False
        return True

    def render(self) -> str:
        lines = [
            f"overload frontier: policy={self.policy} trace={self.trace} "
            f"nodes={self.nodes} deadline={self.deadline_s:g}s "
            f"knee={self.knee_rps:.0f} req/s",
            f"  {'load':>5} {'admission':>9} {'offered':>9} {'tput':>8} "
            f"{'goodput':>8} {'shed':>6} {'p50':>8} {'p95':>8} {'p99':>8}",
        ]
        for bare, ctrl in zip(self.bare, self.controlled):
            for p in (bare, ctrl):
                lines.append(
                    f"  {p.multiplier:>4.1f}x {'on' if p.admission else 'off':>9} "
                    f"{p.arrival_rate:>9.0f} {p.throughput_rps:>8.0f} "
                    f"{p.goodput_rps:>8.0f} {p.shed_fraction:>6.3f} "
                    f"{p.percentiles.get('p50', 0.0):>8.4f} "
                    f"{p.percentiles.get('p95', 0.0):>8.4f} "
                    f"{p.percentiles.get('p99', 0.0):>8.4f}"
                )
        verdict = self.dominance_holds()
        lines.append(
            "  verdict: admission goodput "
            + ("STRICTLY DOMINATES" if verdict else "DOES NOT DOMINATE")
            + " beyond the knee"
        )
        return "\n".join(lines)


def find_knee(
    trace: Trace,
    policy_name: str,
    nodes: int,
    cache_bytes: Optional[int] = None,
    seed: int = 0,
) -> float:
    """The saturation knee: closed-loop capacity of this point (req/s).

    The paper's own measurement — a multiprogramming window that always
    has work queued — gives the highest rate the cluster can absorb;
    offered loads are quoted as multiples of it.
    """
    config = (
        ClusterConfig(nodes=nodes, cache_bytes=cache_bytes)
        if cache_bytes is not None
        else ClusterConfig(nodes=nodes)
    )
    return (
        Simulation(
            trace, make_policy(policy_name), config, passes=2, seed=seed
        )
        .run()
        .throughput_rps
    )


def _run_point(
    trace: Trace,
    policy_name: str,
    config: ClusterConfig,
    rate: float,
    deadline_s: float,
    overload: Optional[OverloadControl],
    seed: int,
) -> Tuple[float, float, float, float, Dict[str, float]]:
    """(throughput, goodput, shed_fraction, mean_latency, percentiles)."""
    sim = Simulation(
        trace,
        make_policy(policy_name),
        config,
        passes=2,
        arrival_rate=rate,
        record_latencies=True,
        overload=overload,
        seed=seed,
    )
    result = sim.run()
    latencies = sim.latencies
    met = sum(1 for l in latencies if l <= deadline_s)
    goodput = met / result.sim_seconds if result.sim_seconds > 0 else 0.0
    shed = (
        result.requests_shed / result.requests_generated
        if result.requests_generated
        else 0.0
    )
    return (
        result.throughput_rps,
        goodput,
        shed,
        result.mean_response_s,
        result.latency_percentiles,
    )


def overload_frontier(
    policy_name: str = "lard",
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    cache_bytes: Optional[int] = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    deadline_s: float = 0.25,
    num_requests: Optional[int] = None,
    seed: int = 0,
    ramp: bool = True,
) -> OverloadFrontier:
    """Measure the goodput frontier at 1x–4x the saturation knee.

    The workload is a seeded flash ramp (hot share building linearly to
    0.6 across the middle of the trace) unless ``ramp=False``; the same
    trace, arrival seed, and cluster serve every point, so the only
    variables are the offered load and the admission controller.
    """
    if any(m <= 0 for m in multipliers):
        raise ValueError("multipliers must be positive")
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests, seed=seed)
    if ramp:
        trace = flash_ramp_trace(
            trace, ramp_start=0.3, ramp_end=0.7, peak_share=0.6, seed=seed
        )
    config = (
        ClusterConfig(nodes=nodes, cache_bytes=cache_bytes)
        if cache_bytes is not None
        else ClusterConfig(nodes=nodes)
    )
    knee = find_knee(trace, policy_name, nodes, cache_bytes, seed=seed)

    bare: List[OverloadPoint] = []
    controlled: List[OverloadPoint] = []
    for mult in multipliers:
        rate = mult * knee
        for admission, sink in ((False, bare), (True, controlled)):
            overload = (
                OverloadControl.default(
                    nodes,
                    limiter_mode="aimd",
                    # The limit chases the latency the goodput metric
                    # cares about — the deadline — at half, for
                    # headroom.  A far tighter target (deadline/4)
                    # over-throttles policies whose healthy latency
                    # tail already brushes it (DNS-stuck clients can't
                    # be rerouted off a hot node, so the global limit
                    # is the only lever and must not be pinned low).
                    target_latency_s=deadline_s / 2.0,
                    deadline_s=deadline_s,
                    seed=seed,
                )
                if admission
                else None
            )
            tput, goodput, shed, mean_lat, pct = _run_point(
                trace, policy_name, config, rate, deadline_s, overload, seed
            )
            sink.append(
                OverloadPoint(
                    multiplier=mult,
                    arrival_rate=rate,
                    admission=admission,
                    throughput_rps=tput,
                    goodput_rps=goodput,
                    shed_fraction=shed,
                    mean_latency_s=mean_lat,
                    percentiles=pct,
                )
            )
    return OverloadFrontier(
        policy=policy_name,
        trace=trace.name,
        nodes=nodes,
        deadline_s=deadline_s,
        knee_rps=knee,
        bare=tuple(bare),
        controlled=tuple(controlled),
    )
