"""Plain-text rendering of experiment outputs.

The paper's artifacts are tables, 3-D surfaces, and line plots; in a
terminal-first reproduction we render tables as aligned text, surfaces as
coarse character heat maps, and line series as labeled columns — enough
to eyeball every shape claim without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["render_table", "render_series", "render_surface"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers`` (numbers right-, text left-aligned)."""
    srows: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:,.2f}" if abs(cell) < 1e5 else f"{cell:,.0f}")
            elif isinstance(cell, int):
                cells.append(f"{cell:,d}")
            else:
                cells.append(str(cell))
        srows.append(cells)
    headers = [str(h) for h in headers]
    ncol = len(headers)
    for cells in srows:
        if len(cells) != ncol:
            raise ValueError(f"row width {len(cells)} != header width {ncol}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in srows)) if srows else len(headers[c])
        for c in range(ncol)
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in srows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict,
) -> str:
    """Render named series over shared x values as a table.

    ``series`` maps a name to a sequence aligned with ``x_values``.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows)


_SHADES = " .:-=+*#%@"


def render_surface(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: np.ndarray,
    title: str = "",
) -> str:
    """Coarse character heat map of a 2-D array (rows x cols).

    Intensity is linearly binned into ten shades between the surface's
    min and max, mirroring how the paper's 3-D plots read at a glance.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"    min={lo:,.1f}  max={hi:,.1f}  (shade ramp '{_SHADES}')")
    header = "          " + "".join(" " for _ in col_labels)
    lines.append(header)
    for i, rl in enumerate(row_labels):
        shades = "".join(
            _SHADES[min(9, int((values[i, j] - lo) / span * 9.999))]
            for j in range(len(col_labels))
        )
        lines.append(f"{str(rl):>8s}  {shades}")
    lines.append(
        f"{'':8s}  cols: {col_labels[0]} .. {col_labels[-1]}"
    )
    return "\n".join(lines)
