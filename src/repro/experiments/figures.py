"""Reproduction entry points for every figure of the paper.

Figures 3–6 come from the analytic model; figures 7–10 from the
trace-driven simulator (one :func:`scaling_experiment` per trace, which
also yields the Section 5.2 miss-rate / idle-time / forwarding analyses).
Every function returns plain data plus a ``render()``-style text form so
benchmarks and the CLI share one implementation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..model import ModelParameters, ModelSurfaces, SurfaceGrid, compute_surfaces, side_view
from ..sim import SimResult, model_bound_for_trace, run_simulation
from ..workload import synthesize
from .report import render_series, render_surface

__all__ = [
    "model_figures",
    "ScalingExperiment",
    "scaling_experiment",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_SYSTEMS",
    "bench_requests",
]

#: Cluster sizes plotted in figures 7-10.
DEFAULT_NODE_COUNTS = (2, 4, 8, 16)
#: Simulated systems of figures 7-10 (the model bound is added separately).
DEFAULT_SYSTEMS = ("l2s", "lard", "traditional")


def bench_requests(default: int = 16_000) -> int:
    """Synthetic request count for benchmark runs.

    ``REPRO_BENCH_REQUESTS`` overrides (e.g. 60000 for tighter numbers,
    at proportionally higher runtime).
    """
    value = os.environ.get("REPRO_BENCH_REQUESTS", "")
    return int(value) if value else default


# ---------------------------------------------------------------------------
# Figures 3-6: the model surfaces
# ---------------------------------------------------------------------------


def model_figures(
    params: Optional[ModelParameters] = None,
    grid: Optional[SurfaceGrid] = None,
) -> ModelSurfaces:
    """Compute figures 3, 4, 5 and 6 in one sweep (they share the grid)."""
    return compute_surfaces(params, grid)


def render_figure3(surfaces: ModelSurfaces) -> str:
    return render_surface(
        [f"{h:.2f}" for h in surfaces.grid.hit_rates],
        [f"{s:.0f}" for s in surfaces.grid.sizes_kb],
        surfaces.oblivious,
        title="Figure 3: locality-oblivious throughput (req/s); rows=hit rate, cols=avg size KB",
    )


def render_figure4(surfaces: ModelSurfaces) -> str:
    return render_surface(
        [f"{h:.2f}" for h in surfaces.grid.hit_rates],
        [f"{s:.0f}" for s in surfaces.grid.sizes_kb],
        surfaces.conscious,
        title="Figure 4: locality-conscious throughput (req/s); rows=hit rate, cols=avg size KB",
    )


def render_figure5(surfaces: ModelSurfaces) -> str:
    return render_surface(
        [f"{h:.2f}" for h in surfaces.grid.hit_rates],
        [f"{s:.0f}" for s in surfaces.grid.sizes_kb],
        surfaces.increase,
        title="Figure 5: throughput increase due to locality (conscious / oblivious)",
    )


def render_figure6(surfaces: ModelSurfaces) -> str:
    env = side_view(surfaces)
    return render_series(
        "hit_rate",
        [f"{h:.2f}" for h in surfaces.grid.hit_rates],
        {
            "min_increase": [f"{v:.2f}" for v in env[:, 0]],
            "max_increase": [f"{v:.2f}" for v in env[:, 1]],
        },
    )


# ---------------------------------------------------------------------------
# Figures 7-10 (+ Section 5.2 analyses): simulated scaling per trace
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalingExperiment:
    """All measurements behind one of figures 7-10."""

    trace: str
    node_counts: Tuple[int, ...]
    #: results[system][node_count] -> SimResult
    results: Dict[str, Dict[int, SimResult]]
    #: Analytic bound (15% replication) per node count.
    model: Dict[int, float]

    def throughput_series(self) -> Dict[str, List[float]]:
        series: Dict[str, List[float]] = {
            "model": [self.model[n] for n in self.node_counts]
        }
        for system, by_n in self.results.items():
            series[system] = [by_n[n].throughput_rps for n in self.node_counts]
        return series

    def metric_series(self, metric: str) -> Dict[str, List[float]]:
        """Per-system series of a SimResult attribute (S1-S3 analyses)."""
        out: Dict[str, List[float]] = {}
        for system, by_n in self.results.items():
            out[system] = [getattr(by_n[n], metric) for n in self.node_counts]
        return out

    def render(self) -> str:
        series = {
            name: [f"{v:,.0f}" for v in vals]
            for name, vals in self.throughput_series().items()
        }
        return render_series("nodes", list(self.node_counts), series)

    def to_csv(self) -> str:
        """Long-format CSV with throughput plus the §5.2 metrics."""
        lines = ["trace,system,nodes,throughput_rps,miss_rate,forwarded,cpu_idle"]
        for n in self.node_counts:
            lines.append(f"{self.trace},model,{n},{self.model[n]:.6g},,,")
        for system, by_n in self.results.items():
            for n in self.node_counts:
                r = by_n[n]
                lines.append(
                    f"{self.trace},{system},{n},{r.throughput_rps:.6g},"
                    f"{r.miss_rate:.6g},{r.forwarded_fraction:.6g},"
                    f"{r.mean_cpu_idle:.6g}"
                )
        return "\n".join(lines) + "\n"


def _scaling_cell(args) -> tuple:
    """One (system, nodes) simulation — module-level for pickling."""
    trace, system, nodes, cache = args
    result = run_simulation(trace, system, nodes=nodes, cache_bytes=cache, passes=2)
    return system, nodes, result


def bench_workers(default: int = 1) -> int:
    """Worker processes for experiment fan-out (REPRO_BENCH_WORKERS)."""
    value = os.environ.get("REPRO_BENCH_WORKERS", "")
    return max(1, int(value)) if value else default


def scaling_experiment(
    trace_name: str,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    num_requests: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ScalingExperiment:
    """Run one of figures 7-10: all systems across cluster sizes.

    The same synthesized trace instance drives every run, exactly as the
    paper drives every server with the same log.  Each (system, nodes)
    cell is an independent deterministic simulation; with ``workers > 1``
    (or ``REPRO_BENCH_WORKERS``) the cells fan out across processes —
    results are bit-identical to the serial run.
    """
    from ..sim import DEFAULT_SIM_CACHE_BYTES

    cache = cache_bytes if cache_bytes is not None else DEFAULT_SIM_CACHE_BYTES
    requests = num_requests if num_requests is not None else bench_requests()
    trace = synthesize(trace_name, num_requests=requests, seed=seed)
    results: Dict[str, Dict[int, SimResult]] = {s: {} for s in systems}
    model: Dict[int, float] = {}
    for n in node_counts:
        # The bound uses the synthesized trace (effective population), not
        # the preset name, so bound and simulation see the same workload.
        model[n] = model_bound_for_trace(trace, nodes=n, cache_bytes=cache).throughput

    cells = [(trace, s, n, cache) for n in node_counts for s in systems]
    n_workers = workers if workers is not None else bench_workers()
    # Fan out through the farm's ordered pool map: serial fallback,
    # worker-crash retry, and ordered collection in one place (results
    # are bit-identical to the serial run either way).
    from ..farm.runner import pool_map

    for system, n, result in pool_map(_scaling_cell, cells, workers=n_workers):
        results[system][n] = result
    return ScalingExperiment(
        trace=trace_name,
        node_counts=tuple(node_counts),
        results=results,
        model=model,
    )
