"""Server behaviour on an unreliable interconnect (this repo's A3 study).

The paper's cluster assumes a perfect system-area network; its fault
analysis (§7) covers *node* crashes only.  This experiment asks the
robustness question the paper leaves open: what happens to each
distribution strategy when the **fabric itself** misbehaves — messages
lost, duplicated, delayed, links cut, the cluster partitioned?

Two studies share one runner:

* :func:`netfault_experiment` — a **loss sweep**: every policy at
  message-loss rates {0, 0.1%, 1%, 5%} (plus whatever the caller asks
  for), reporting throughput, p99 response time, the served fraction,
  and the message-protocol effort (retries, dedups, give-ups) that
  bought it.
* the **partition scenario** inside the same report: a calibration run
  with the protocol on but the fabric perfect (``always_on``) learns
  each policy's warmup-boundary time and run duration; a group of nodes
  is then partitioned from the rest over a window expressed as
  fractions of the *measured* span, so the whole outage lands inside
  the measured window (the warmup pass runs slower than the measured
  pass — cold caches — so fractions of the total duration would miss).
  The calibration doubles as the table's ``protocol`` row: ack/retry
  overhead on a perfect fabric.  The heal also exercises the policies'
  re-announce paths.

All runs are seeded and deterministic: the same seed produces
byte-identical reports, which the CI lossy-network smoke run asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ClusterConfig
from ..netfaults import NetFaultConfig, NetFaultSchedule
from ..servers import make_policy
from ..sim import SimResult, Simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = [
    "NetFaultCell",
    "NetFaultReport",
    "netfault_experiment",
    "run_netfault_simulation",
    "summarize_run",
]

#: The four server designs the paper compares, in its own order.
DEFAULT_POLICIES: Tuple[str, ...] = ("traditional", "lard", "lard-ng", "l2s")

#: Loss rates for the sweep: perfect fabric, then roughly one lost
#: message per thousand / hundred / twenty — the last is far beyond
#: anything a healthy system-area network shows and probes the
#: protocol's give-up behaviour.
DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.05)


@dataclass(frozen=True)
class NetFaultCell:
    """One (policy, scenario) operating point."""

    policy: str
    #: Global message-loss probability for this cell (sweep cells).
    loss_rate: float
    #: "loss" for sweep cells, "partition" for the partition scenario.
    scenario: str
    throughput_rps: float
    #: p99 response time in milliseconds (NaN-free: 0.0 when the run
    #: recorded no latencies).
    p99_ms: float
    #: Completed / (completed + terminally failed + shed).
    served_fraction: float
    requests_failed: int
    requests_shed: int
    #: Message-protocol effort behind the cell.
    retries: int
    dedups: int
    send_failures: int
    redispatches: int
    #: Messages dropped by the fabric, by cause.
    drop_causes: Dict[str, int] = field(default_factory=dict)
    #: DFS reads that fell back to the local replica after retries.
    dfs_local_fallbacks: int = 0
    #: Largest |sent - delivered - dropped - in_flight| residual over
    #: message kinds; non-zero means the accounting books don't close.
    reconciliation_residual: int = 0


@dataclass(frozen=True)
class NetFaultReport:
    """The full loss sweep plus the partition scenario."""

    trace: str
    nodes: int
    requests: int
    seed: int
    loss_rates: Tuple[float, ...]
    #: Partition spec actually used: (group, start_s, end_s) or None.
    partition: Optional[Tuple[Tuple[int, ...], float, float]]
    cells: List[NetFaultCell]

    def render(self) -> str:
        """Fixed-width text tables (deterministic: no timestamps)."""
        lines = [
            f"Unreliable interconnect: {self.trace}, {self.nodes} nodes, "
            f"{self.requests} requests, seed {self.seed}",
            "",
            f"{'policy':<12} {'scenario':<12} {'tput (req/s)':>12} "
            f"{'p99 (ms)':>9} {'served':>7} {'fail':>5} {'shed':>5} "
            f"{'retry':>6} {'dedup':>6} {'giveup':>6} {'redisp':>6}",
        ]
        for cell in self.cells:
            if cell.scenario == "loss":
                scenario = f"loss {cell.loss_rate:.1%}"
            else:
                scenario = cell.scenario
            lines.append(
                f"{cell.policy:<12} {scenario:<12} {cell.throughput_rps:>12.1f} "
                f"{cell.p99_ms:>9.2f} {cell.served_fraction:>7.4f} "
                f"{cell.requests_failed:>5d} {cell.requests_shed:>5d} "
                f"{cell.retries:>6d} {cell.dedups:>6d} "
                f"{cell.send_failures:>6d} {cell.redispatches:>6d}"
            )
        drops = sorted(
            {cause for cell in self.cells for cause in cell.drop_causes}
        )
        if drops:
            lines.append("")
            lines.append("message drops by cause:")
            for cell in self.cells:
                if not cell.drop_causes:
                    continue
                causes = ", ".join(
                    f"{cause}={cell.drop_causes[cause]}"
                    for cause in sorted(cell.drop_causes)
                )
                scenario = (
                    f"loss {cell.loss_rate:.1%}"
                    if cell.scenario == "loss"
                    else cell.scenario
                )
                lines.append(f"  {cell.policy:<12} {scenario:<12} {causes}")
        residual = max(
            (abs(cell.reconciliation_residual) for cell in self.cells),
            default=0,
        )
        lines.append("")
        lines.append(
            "message accounting: "
            + (
                "sent == delivered + dropped + in-flight for every kind"
                if residual == 0
                else f"RESIDUAL {residual} — books do not close"
            )
        )
        return "\n".join(lines)


def run_netfault_simulation(
    trace: Trace,
    policy_name: str,
    config: ClusterConfig,
    passes: int = 2,
    record_latencies: bool = True,
    view_max_age_s: Optional[float] = None,
) -> Simulation:
    """One netfault run (shared by the experiment and ``repro netfaults``).

    L2S alone takes ``view_max_age_s`` — its defense against load
    vectors going stale behind a partition; the other policies have no
    equivalent knob.
    """
    kwargs = (
        {"view_max_age_s": view_max_age_s}
        if policy_name == "l2s" and view_max_age_s is not None
        else {}
    )
    sim = Simulation(
        trace,
        make_policy(policy_name, **kwargs),
        config,
        passes=passes,
        record_latencies=record_latencies,
    )
    try:
        sim.run()
    except RuntimeError:
        # Heavy loss or an unhealed partition can strand requests past
        # their retry budgets; the measured window still stands.
        pass
    return sim


def summarize_run(
    sim: Simulation,
    policy_name: str,
    loss_rate: float,
    scenario: str,
) -> NetFaultCell:
    result = _result_or_partial(sim)
    stats = result.message_stats
    summary = result.netfault_summary
    served = result.requests_measured
    denied = result.requests_failed + result.requests_shed
    recon = result.message_reconciliation()
    return NetFaultCell(
        policy=policy_name,
        loss_rate=loss_rate,
        scenario=scenario,
        throughput_rps=result.throughput_rps,
        p99_ms=result.latency_percentiles.get("p99", 0.0) * 1000.0,
        served_fraction=(
            served / (served + denied) if served + denied else 0.0
        ),
        requests_failed=result.requests_failed,
        requests_shed=result.requests_shed,
        retries=sum(row.get("retries", 0) for row in stats.values()),
        dedups=sum(row.get("dedups", 0) for row in stats.values()),
        send_failures=sum(
            row.get("send_failures", 0) for row in stats.values()
        ),
        redispatches=summary.get("redispatches", 0),
        drop_causes=dict(summary.get("drop_causes", {})),
        dfs_local_fallbacks=summary.get("dfs_local_fallbacks", 0),
        reconciliation_residual=max(
            (abs(v) for v in recon.values()), default=0
        ),
    )


def _result_or_partial(sim: Simulation) -> SimResult:
    """The run's :class:`SimResult`, synthesized from driver state when
    the run ended short (e.g. an unhealed partition stranded requests)."""
    result = getattr(sim, "_result", None)
    if result is not None:
        return result
    # The driver raised before building a result: reconstruct the
    # measured-window essentials directly.
    elapsed = (
        sim._last_completion - sim._measure_start
        if sim._measure_start is not None
        else 0.0
    )
    return SimResult(
        policy=sim.policy.name,
        trace=sim.trace.name,
        nodes=sim.config.nodes,
        cache_bytes=sim.config.cache_bytes,
        requests_measured=sim._measured,
        requests_warmup=sim._warmup_count,
        sim_seconds=elapsed,
        throughput_rps=sim._measured / elapsed if elapsed > 0 else 0.0,
        miss_rate=sim.cluster.overall_miss_rate(),
        forwarded_fraction=0.0,
        cpu_utilizations=[],
        mean_response_s=sim._response.mean,
        messages_per_request=0.0,
        node_completions=[n.completed for n in sim.cluster.nodes],
        policy_stats=sim.policy.stats(),
        requests_failed=sim._failed,
        requests_retried=sim._retried,
        requests_shed=sum(n.shed for n in sim.cluster.nodes),
        message_stats=sim._message_stats(),
        netfault_summary=sim._netfault_summary(),
        # A short run has requests stranded in flight, so verify() on
        # this partial result reports the conservation gap — truthfully.
        requests_generated=sim._next,
        requests_failed_warmup=sim._failed_at_measure,
    )


def netfault_experiment(
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 16,
    policies: Sequence[str] = DEFAULT_POLICIES,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    partition_group: Optional[Sequence[int]] = (0, 1),
    partition_window: Tuple[float, float] = (0.25, 0.65),
    num_requests: Optional[int] = None,
    seed: int = 0,
    view_max_age_s: Optional[float] = 0.5,
    dup_rate: float = 0.0,
    extra_delay_s: float = 0.0,
    jitter_s: float = 0.0,
) -> NetFaultReport:
    """Loss sweep × policies, plus one timed-partition scenario each.

    ``partition_window`` gives the outage start/end as fractions of each
    policy's *measured window* (between the warmup boundary and the end
    of the calibration run), so the outage lands inside the measured
    window for every design regardless of how fast it runs.  Pass
    ``partition_group=None`` to skip the partition scenario (and its
    calibration / protocol-overhead cells).
    """
    if not policies:
        raise ValueError("need at least one policy")
    if any(not 0.0 <= l < 1.0 for l in loss_rates):
        raise ValueError("loss rates must be in [0, 1)")
    lo, hi = partition_window
    if not 0.0 < lo < hi < 1.0:
        raise ValueError("partition_window must satisfy 0 < lo < hi < 1")
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)

    cells: List[NetFaultCell] = []
    partition_used: Optional[Tuple[Tuple[int, ...], float, float]] = None
    for policy_name in policies:
        for loss in loss_rates:
            nf = NetFaultConfig(
                loss_rate=loss,
                dup_rate=dup_rate,
                extra_delay_s=extra_delay_s,
                jitter_s=jitter_s,
                seed=seed,
            )
            config = ClusterConfig(
                nodes=nodes, net_faults=nf if nf.active else None
            )
            sim = run_netfault_simulation(
                trace,
                policy_name,
                config,
                view_max_age_s=view_max_age_s,
            )
            cells.append(summarize_run(sim, policy_name, loss, "loss"))

        if partition_group is None:
            continue
        # Calibration twin of the partition run: protocol on, fabric
        # perfect.  Its timeline matches the partition run's exactly up
        # to the first scheduled event (with jitter_s > 0 only
        # approximately — the jitter draws interleave differently).
        base = dict(
            dup_rate=dup_rate,
            extra_delay_s=extra_delay_s,
            jitter_s=jitter_s,
            seed=seed,
        )
        calib = run_netfault_simulation(
            trace,
            policy_name,
            ClusterConfig(
                nodes=nodes, net_faults=NetFaultConfig(always_on=True, **base)
            ),
            view_max_age_s=view_max_age_s,
        )
        cells.append(summarize_run(calib, policy_name, 0.0, "protocol"))
        boundary = calib._measure_start
        duration = calib._last_completion
        if boundary is None or duration <= boundary:
            continue
        span = duration - boundary
        group = tuple(sorted(partition_group))
        start = boundary + lo * span
        end = boundary + hi * span
        partition_used = (group, start, end)
        nf = NetFaultConfig(
            schedule=NetFaultSchedule.partition(group, start, end), **base
        )
        sim = run_netfault_simulation(
            trace,
            policy_name,
            ClusterConfig(nodes=nodes, net_faults=nf),
            view_max_age_s=view_max_age_s,
        )
        cells.append(summarize_run(sim, policy_name, 0.0, "partition"))

    return NetFaultReport(
        trace=trace.name,
        nodes=nodes,
        requests=len(trace),
        seed=seed,
        loss_rates=tuple(loss_rates),
        partition=partition_used,
        cells=cells,
    )
