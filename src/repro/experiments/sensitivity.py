"""S5 — §5.2 summary: L2S's robustness to communication parameters.

"We find that the performance of L2S is only slightly affected by
reasonable parameters of frequency of broadcasts, messaging overhead,
and network latency and bandwidth."  Reproduced as three sweeps around
the defaults, each reporting the relative throughput spread.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster import ClusterConfig
from ..model.parameters import ModelParameters
from ..servers import L2SPolicy
from ..sim import SimResult, run_simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = [
    "broadcast_frequency_sweep",
    "message_overhead_sweep",
    "network_bandwidth_sweep",
    "relative_spread",
]


def _trace(trace: Optional[Trace], num_requests: Optional[int]) -> Trace:
    if trace is not None:
        return trace
    requests = num_requests if num_requests is not None else bench_requests()
    return synthesize("calgary", num_requests=requests)


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / max of a set of throughputs."""
    vs = list(values)
    if not vs or max(vs) <= 0:
        return 0.0
    return (max(vs) - min(vs)) / max(vs)


def broadcast_frequency_sweep(
    deltas: Sequence[int] = (2, 3, 4, 6, 8, 16),
    trace: Optional[Trace] = None,
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[int, SimResult]:
    """L2S throughput vs the load-broadcast threshold (default 4).

    Small deltas broadcast often (fresh views, more control traffic);
    large deltas broadcast rarely (stale views, less traffic).  The
    paper found "reasonable" frequencies flat; our sweep also exposes
    the staleness cliff past delta ~ T/3, where decisions herd onto
    stale least-loaded estimates and balancing collapses — the reason 4
    "was found to be the best" in the paper's tuning.
    """
    t = _trace(trace, num_requests)
    out: Dict[int, SimResult] = {}
    for delta in deltas:
        policy = L2SPolicy(broadcast_delta=delta)
        out[delta] = run_simulation(t, policy, nodes=nodes, passes=2)
    return out


def message_overhead_sweep(
    overheads_us: Sequence[float] = (1.0, 3.0, 6.0, 12.0),
    trace: Optional[Trace] = None,
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[float, SimResult]:
    """L2S throughput vs the per-message CPU overhead (default 3 us)."""
    t = _trace(trace, num_requests)
    out: Dict[float, SimResult] = {}
    for us in overheads_us:
        config = ClusterConfig(nodes=nodes, cpu_msg_overhead_s=us * 1e-6)
        out[us] = run_simulation(t, "l2s", config=config, passes=2)
    return out


def network_bandwidth_sweep(
    gbits: Sequence[float] = (0.5, 1.0, 2.0),
    trace: Optional[Trace] = None,
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[float, SimResult]:
    """L2S throughput vs cluster-network link bandwidth (default 1 Gb/s).

    The Table-1 convention maps 1 Gbit/s to 128 000 KB/s of NI
    throughput; the sweep scales that.
    """
    t = _trace(trace, num_requests)
    out: Dict[float, SimResult] = {}
    for g in gbits:
        hardware = ModelParameters(ni_kb_per_s=128_000.0 * g)
        config = ClusterConfig(nodes=nodes, hardware=hardware)
        out[g] = run_simulation(t, "l2s", config=config, passes=2)
    return out
