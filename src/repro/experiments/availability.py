"""Availability under node failure — the paper's decentralization claim.

The paper motivates L2S with LARD's single point of failure: "a
front-end node that ... represents both a single point of failure and a
potential bottleneck", versus L2S where "all nodes behave exactly the
same ... the system is bottleneck-free and has no single point of
failure".  This experiment quantifies it: crash one node at the start of
the measurement window and compare against an identical healthy run.

* L2S / traditional: lose roughly a node's worth of capacity (plus, for
  L2S, a cache-reheat transient for the dead node's files) and keep
  serving;
* LARD, back-end crash: keep serving on the survivors;
* LARD, front-end crash: every subsequent request fails — total outage.

Whole-window averages are compared (healthy vs degraded run over the
same trace pass), which is robust to the throughput drift a replayed
trace shows within a pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..servers import make_policy
from ..sim import Simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = ["AvailabilityResult", "availability_experiment"]


@dataclass(frozen=True)
class AvailabilityResult:
    """Healthy-vs-degraded throughput for one crash scenario."""

    policy: str
    nodes: int
    failed_node: int
    #: Measured throughput of the healthy control run (req/s).
    healthy_throughput: float
    #: Measured throughput with the node crashed at the start of the
    #: measurement window (req/s).
    degraded_throughput: float
    #: Requests aborted by the crash (in-flight + post-crash failures).
    requests_failed: int
    #: Requests completed after the crash.
    completed_after: int

    @property
    def retained_fraction(self) -> float:
        """Degraded/healthy throughput (0 = total outage)."""
        if self.healthy_throughput <= 0:
            return 0.0
        return self.degraded_throughput / self.healthy_throughput


def _measured_throughput(sim: Simulation) -> float:
    """Measured-window rate even if the run ended short (total outage)."""
    if sim._measure_start is None:
        return 0.0
    elapsed = sim._last_completion - sim._measure_start
    if elapsed <= 0:
        return 0.0
    return sim._measured / elapsed


def availability_experiment(
    policy_name: str,
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    failed_node: int = 0,
    num_requests: Optional[int] = None,
) -> AvailabilityResult:
    """Crash ``failed_node`` as measurement begins; compare to healthy.

    The crash lands mid-warmup, so the survivors re-warm (L2S reassigns
    and reloads the dead node's files) before measurement begins and the
    measured window reports the degraded *steady state* — the quantity
    the availability claim is about.
    """
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    config = ClusterConfig(nodes=nodes)
    trigger = len(trace) // 2  # mid-warmup (passes=2: warmup is one replay)

    def run(failures):
        sim = Simulation(
            trace,
            make_policy(policy_name),
            config,
            passes=2,
            failures=failures,
            record_timeline=True,
        )
        try:
            sim.run()
        except RuntimeError:
            # A total outage leaves the driver short of its request
            # count; the measured window still stands.
            pass
        return sim

    healthy = run([])
    degraded = run([(failed_node, trigger)])
    return AvailabilityResult(
        policy=policy_name,
        nodes=nodes,
        failed_node=failed_node,
        healthy_throughput=_measured_throughput(healthy),
        degraded_throughput=_measured_throughput(degraded),
        requests_failed=degraded._failed,
        completed_after=degraded._measured,
    )
