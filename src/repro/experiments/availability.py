"""Availability under node failure — the paper's decentralization claim.

The paper motivates L2S with LARD's single point of failure: "a
front-end node that ... represents both a single point of failure and a
potential bottleneck", versus L2S where "all nodes behave exactly the
same ... the system is bottleneck-free and has no single point of
failure".  Two experiments quantify it:

* :func:`availability_experiment` — the original whole-window compare:
  crash one node as measurement begins and report degraded vs healthy
  throughput.  L2S / traditional lose roughly a node's worth of
  capacity and keep serving; a LARD front-end crash is a total outage.

* :func:`fault_recovery_experiment` — the full crash *and reboot* story
  on the :mod:`repro.faults` subsystem: a healthy calibration run
  learns the run's duration, then a faulted run crashes a node at a
  chosen fraction of it and reboots it (cold cache) later, with clients
  retrying under capped exponential backoff and an availability
  timeline sampling goodput, failures, and the cache-reheat transient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster import ClusterConfig
from ..faults import AvailabilityTimeline, FaultSchedule, RetryPolicy
from ..servers import make_policy
from ..sim import Simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = [
    "AvailabilityResult",
    "availability_experiment",
    "FaultRecoveryResult",
    "fault_recovery_experiment",
    "run_fault_simulation",
]


@dataclass(frozen=True)
class AvailabilityResult:
    """Healthy-vs-degraded throughput for one crash scenario."""

    policy: str
    nodes: int
    failed_node: int
    #: Measured throughput of the healthy control run (req/s).
    healthy_throughput: float
    #: Measured throughput with the node crashed at the start of the
    #: measurement window (req/s).
    degraded_throughput: float
    #: Requests aborted by the crash (in-flight + post-crash failures).
    requests_failed: int
    #: Requests completed after the crash.
    completed_after: int

    @property
    def retained_fraction(self) -> float:
        """Degraded/healthy throughput (0 = total outage)."""
        if self.healthy_throughput <= 0:
            return 0.0
        return self.degraded_throughput / self.healthy_throughput


def _measured_throughput(sim: Simulation) -> float:
    """Measured-window rate even if the run ended short (total outage)."""
    if sim._measure_start is None:
        return 0.0
    elapsed = sim._last_completion - sim._measure_start
    if elapsed <= 0:
        return 0.0
    return sim._measured / elapsed


def availability_experiment(
    policy_name: str,
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    failed_node: int = 0,
    num_requests: Optional[int] = None,
) -> AvailabilityResult:
    """Crash ``failed_node`` as measurement begins; compare to healthy.

    The crash lands mid-warmup, so the survivors re-warm (L2S reassigns
    and reloads the dead node's files) before measurement begins and the
    measured window reports the degraded *steady state* — the quantity
    the availability claim is about.
    """
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    config = ClusterConfig(nodes=nodes)
    trigger = len(trace) // 2  # mid-warmup (passes=2: warmup is one replay)

    def run(faults):
        sim = Simulation(
            trace,
            make_policy(policy_name),
            config,
            passes=2,
            faults=faults,
            record_timeline=True,
        )
        try:
            sim.run()
        except RuntimeError:
            # A total outage leaves the driver short of its request
            # count; the measured window still stands.
            pass
        return sim

    healthy = run(None)
    degraded = run(FaultSchedule.single_crash(failed_node, after_requests=trigger))
    return AvailabilityResult(
        policy=policy_name,
        nodes=nodes,
        failed_node=failed_node,
        healthy_throughput=_measured_throughput(healthy),
        degraded_throughput=_measured_throughput(degraded),
        requests_failed=degraded._failed,
        completed_after=degraded._measured,
    )


# -- crash-and-reboot on the faults subsystem ---------------------------------


@dataclass(frozen=True)
class FaultRecoveryResult:
    """One crash/reboot scenario measured on the availability timeline."""

    policy: str
    nodes: int
    failed_node: int
    #: When the node crashed / rebooted (simulated seconds; recover_at is
    #: None for a crash with no reboot).
    crash_at: float
    recover_at: Optional[float]
    #: Whole-run throughput of the healthy calibration run (req/s).
    healthy_throughput: float
    #: Whole-run throughput of the faulted run (req/s).
    faulted_throughput: float
    #: Terminal failures and client retries in the faulted run.
    requests_failed: int
    requests_retried: int
    #: Mean goodput over the second half of the outage (past the
    #: in-flight drain; ~0 for a LARD front-end crash).
    outage_goodput: float
    #: Mean goodput after the reboot settles (last quarter of the run).
    recovered_goodput: float
    #: Completion-weighted miss rate just after the reboot vs at the end
    #: of the run — their gap is the cache-reheat transient.
    reheat_miss_rate: float
    steady_miss_rate: float
    #: The full sampled timeline (render() / to_csv() for reports).
    timeline: AvailabilityTimeline
    #: Fault events actually executed: (time, kind, node).
    events: List[Tuple[float, str, int]]

    @property
    def outage_fraction(self) -> float:
        """Outage goodput relative to healthy (0 = total outage)."""
        if self.healthy_throughput <= 0:
            return 0.0
        return self.outage_goodput / self.healthy_throughput


def run_fault_simulation(
    trace: Trace,
    policy_name: str,
    config: ClusterConfig,
    faults: Optional[FaultSchedule],
    retry: Optional[RetryPolicy] = None,
    timeline_interval_s: Optional[float] = None,
    passes: int = 2,
    failover_s: Optional[float] = None,
) -> Simulation:
    """One fault-injected run with timeline + retry wiring (shared by the
    experiment below and the ``repro faults`` CLI command)."""
    kwargs = {"failover_s": failover_s} if failover_s is not None else {}
    policy = make_policy(policy_name, **kwargs)
    sim = Simulation(
        trace,
        policy,
        config,
        passes=passes,
        faults=faults,
        retry=retry,
        timeline_interval_s=timeline_interval_s,
    )
    try:
        sim.run()
    except RuntimeError:
        # Retries exhausted against a permanent outage leave the driver
        # short of its request count; the timeline still stands.
        pass
    return sim


def fault_recovery_experiment(
    policy_name: str,
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    failed_node: int = 0,
    num_requests: Optional[int] = None,
    crash_frac: float = 0.55,
    recover_frac: Optional[float] = 0.75,
    retry: Optional[RetryPolicy] = None,
    samples: int = 160,
    failover_s: Optional[float] = None,
    cache_bytes: Optional[int] = None,
) -> FaultRecoveryResult:
    """Crash ``failed_node`` partway through a run and reboot it later.

    A healthy calibration run (same trace, same config) learns the run's
    total duration ``T``; the faulted run then crashes at
    ``crash_frac * T`` and reboots at ``recover_frac * T`` (pass
    ``recover_frac=None`` for a crash with no reboot).  With the default
    ``passes=2`` warmup replay, both instants land inside the measured
    pass, after every cache is warm — so the post-reboot miss-rate spike
    on the timeline is purely the reheat transient.
    """
    if not 0.0 < crash_frac < 1.0:
        raise ValueError(f"crash_frac must be in (0, 1), got {crash_frac}")
    if recover_frac is not None and not crash_frac < recover_frac < 1.0:
        raise ValueError(
            f"recover_frac must be in (crash_frac, 1), got {recover_frac}"
        )
    if samples < 10:
        raise ValueError(f"samples must be >= 10, got {samples}")
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    if cache_bytes is not None:
        config = ClusterConfig(nodes=nodes, cache_bytes=cache_bytes)
    else:
        config = ClusterConfig(nodes=nodes)
    if retry is None:
        retry = RetryPolicy()

    healthy = run_fault_simulation(
        trace, policy_name, config, faults=None, passes=2, failover_s=failover_s
    )
    total_s = healthy._last_completion
    crash_at = crash_frac * total_s
    recover_at = recover_frac * total_s if recover_frac is not None else None
    if recover_at is not None:
        schedule = FaultSchedule.crash_and_recover(failed_node, crash_at, recover_at)
    else:
        schedule = FaultSchedule.single_crash(failed_node, at=crash_at)

    sim = run_fault_simulation(
        trace,
        policy_name,
        config,
        faults=schedule,
        retry=retry,
        timeline_interval_s=total_s / samples,
        passes=2,
        failover_s=failover_s,
    )
    timeline = sim.timeline
    assert timeline is not None
    end = max(total_s, sim._last_completion)
    outage_end = recover_at if recover_at is not None else end
    # Second half of the outage: past the drain of requests that were
    # already in service when the node died.
    outage_goodput = timeline.goodput_between(
        crash_at + 0.5 * (outage_end - crash_at), outage_end
    )
    recovered_goodput = timeline.goodput_between(0.75 * end, end)
    if recover_at is not None:
        reheat_span = 0.25 * (end - recover_at)
        reheat = timeline.miss_rate_between(recover_at, recover_at + reheat_span)
        steady = timeline.miss_rate_between(end - reheat_span, end)
    else:
        reheat = steady = timeline.miss_rate_between(0.75 * end, end)

    return FaultRecoveryResult(
        policy=policy_name,
        nodes=nodes,
        failed_node=failed_node,
        crash_at=crash_at,
        recover_at=recover_at,
        healthy_throughput=(
            healthy._completed / total_s if total_s > 0 else 0.0
        ),
        faulted_throughput=(
            sim._completed / sim._last_completion
            if sim._last_completion > 0
            else 0.0
        ),
        requests_failed=sim._failed,
        requests_retried=sim._retried,
        outage_goodput=outage_goodput,
        recovered_goodput=recovered_goodput,
        reheat_miss_rate=reheat,
        steady_miss_rate=steady,
        timeline=timeline,
        events=list(timeline.events),
    )
