"""Latency under open-loop load, and the model's M/M/1 validation.

The paper focuses on throughput ("latencies involved in servers are
usually low compared to the overall latency a client experiences"), but
its queuing model predicts response times too.  Two studies:

* :func:`latency_vs_load` — drive a server with Poisson arrivals at
  fractions of its measured capacity and report mean/percentile
  response times: the hockey-stick every queueing system shows.
* :func:`model_latency_validation` — compare the simulator's measured
  mean response time against the model's open M/M/1 network sum at the
  same arrival rate, for the locality-oblivious server whose topology
  matches the model exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ClusterConfig
from ..model import ModelParameters, bound_for_population
from ..servers import make_policy
from ..sim import Simulation
from ..workload import Trace, synthesize
from .figures import bench_requests

__all__ = ["LoadPoint", "latency_vs_load", "model_latency_validation"]


@dataclass(frozen=True)
class LoadPoint:
    """One operating point of the latency-vs-load curve."""

    utilization: float
    arrival_rate: float
    mean_latency_s: float
    percentiles: Dict[str, float]
    throughput_rps: float


def latency_vs_load(
    policy_name: str = "l2s",
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    loads: Sequence[float] = (0.3, 0.5, 0.7, 0.85),
    num_requests: Optional[int] = None,
) -> List[LoadPoint]:
    """Open-loop latency at fractions of the measured saturation rate.

    The capacity reference is a closed-loop run of the same system, so
    every load fraction is meaningful regardless of how far below the
    analytic bound the policy lands.
    """
    if any(not 0.0 < l < 1.0 for l in loads):
        raise ValueError("loads must be fractions in (0, 1)")
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    config = ClusterConfig(nodes=nodes)
    capacity = (
        Simulation(trace, make_policy(policy_name), config, passes=2)
        .run()
        .throughput_rps
    )
    points: List[LoadPoint] = []
    for load in loads:
        rate = load * capacity
        sim = Simulation(
            trace,
            make_policy(policy_name),
            config,
            passes=2,
            arrival_rate=rate,
            record_latencies=True,
        )
        result = sim.run()
        points.append(
            LoadPoint(
                utilization=load,
                arrival_rate=rate,
                mean_latency_s=result.mean_response_s,
                percentiles=result.latency_percentiles,
                throughput_rps=result.throughput_rps,
            )
        )
    return points


def model_latency_validation(
    trace: Optional[Trace] = None,
    trace_name: str = "calgary",
    nodes: int = 8,
    load: float = 0.5,
    num_requests: Optional[int] = None,
) -> Tuple[float, float]:
    """(model, simulated) mean response time at one arrival rate.

    Uses the traditional (locality-oblivious) server, whose request path
    is exactly the model's station sequence.  The arrival rate is the
    given fraction of the *model's* saturation bound, and the model's
    response time is the open M/M/1 network sum at that rate.
    """
    if not 0.0 < load < 0.95:
        raise ValueError("load must be in (0, 0.95)")
    if trace is None:
        requests = num_requests if num_requests is not None else bench_requests()
        trace = synthesize(trace_name, num_requests=requests)
    size_kb = trace.mean_request_bytes() / 1024.0
    config = ClusterConfig(nodes=nodes)
    params = ModelParameters(
        nodes=nodes,
        alpha=trace.fileset.alpha,
        cache_bytes=config.cache_bytes,
    )
    bound = bound_for_population(
        "oblivious", params, size_kb, trace.unique_files_touched()
    )
    rate = load * bound.throughput
    model_latency = bound.response_time(rate)

    sim = Simulation(
        trace,
        make_policy("traditional"),
        config,
        passes=2,
        arrival_rate=rate,
        record_latencies=True,
    )
    result = sim.run()
    return model_latency, result.mean_response_s
