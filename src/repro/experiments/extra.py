"""The paper's in-text results and this repo's ablations.

Section 3.2 text: memory-size sensitivity of the model (128 -> 512 MB)
and the effect of replication R.  Section 5.2 text: simulated memory
sensitivity (32 -> 128 MB) where the traditional server catches up while
LARD stays capped.  Plus ablations of our own design choices: the
multiprogramming level, the DFS layout, and L2S's eager-local-replication
variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ClusterConfig
from ..model import MB, ModelParameters, SurfaceGrid, compute_surfaces, conscious_result
from ..servers import L2SPolicy
from ..sim import SimResult, run_simulation
from ..workload import Trace, synthesize
from .figures import bench_requests
from .report import render_series, render_table

__all__ = [
    "model_memory_sensitivity",
    "model_replication_sweep",
    "sim_memory_sensitivity",
    "mpl_ablation",
    "dfs_ablation",
    "l2s_variant_ablation",
]

#: Compact grid for sensitivity sweeps (full grid is the figures' job).
_SWEEP_GRID = SurfaceGrid(
    hit_rates=(0.0, 0.2, 0.4, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0),
    sizes_kb=(4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
)


def model_memory_sensitivity(
    memories_mb: Sequence[int] = (128, 256, 512),
) -> Dict[int, float]:
    """Peak locality gain as node memory grows (Section 3.2 text).

    The paper: at 512 MB the peak is "a factor of about 6.5" versus 7 at
    the 128 MB default — larger memories shrink the benefit everywhere.
    """
    peaks: Dict[int, float] = {}
    for mb in memories_mb:
        params = ModelParameters(cache_bytes=mb * MB)
        peaks[mb] = compute_surfaces(params, _SWEEP_GRID).peak_increase()
    return peaks


def model_replication_sweep(
    replications: Sequence[float] = (0.0, 0.05, 0.15, 0.3, 0.5, 1.0),
    size_kb: float = 16.0,
    hit_rate: float = 0.7,
) -> List[Tuple[float, float, float, float]]:
    """(R, throughput, Hlc, Q) at one operating point (Section 3.2 text).

    Shows the replication trade-off: more replication cuts forwarding
    (Q falls) but shrinks the aggregate cache (Hlc falls); R = 1
    degenerates to the locality-oblivious server.
    """
    rows = []
    for r in replications:
        params = ModelParameters(replication=r)
        res = conscious_result(params, size_kb, hit_rate)
        rows.append((r, res.throughput, res.hit_rate, res.forward_fraction))
    return rows


def sim_memory_sensitivity(
    trace_name: str = "calgary",
    memories_mb: Sequence[int] = (32, 64, 128),
    systems: Sequence[str] = ("l2s", "lard", "traditional"),
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[str, Dict[int, SimResult]]:
    """Throughput as node memory grows (Section 5.2 text).

    The paper: bigger memories help the traditional server tremendously
    (misses vanish) while LARD stays capped by its front-end, so the
    traditional server eventually overtakes LARD.
    """
    requests = num_requests if num_requests is not None else bench_requests()
    trace = synthesize(trace_name, num_requests=requests)
    out: Dict[str, Dict[int, SimResult]] = {s: {} for s in systems}
    for mb in memories_mb:
        for system in systems:
            out[system][mb] = run_simulation(
                trace, system, nodes=nodes, cache_bytes=mb * MB, passes=2
            )
    return out


def mpl_ablation(
    trace_name: str = "calgary",
    mpls: Sequence[int] = (8, 12, 16, 20),
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[int, SimResult]:
    """L2S sensitivity to the injector's buffer depth (our methodology).

    Throughput rises mildly with deeper buffers until the mean
    connection count crosses L2S's T=20, where replication churn sets in
    — the regime boundary discussed in DESIGN.md.
    """
    requests = num_requests if num_requests is not None else bench_requests()
    trace = synthesize(trace_name, num_requests=requests)
    out: Dict[int, SimResult] = {}
    for mpl in mpls:
        cfg = ClusterConfig(nodes=nodes, multiprogramming_per_node=mpl)
        out[mpl] = run_simulation(trace, "l2s", config=cfg, passes=2)
    return out


def dfs_ablation(
    trace_name: str = "calgary",
    nodes: int = 8,
    num_requests: Optional[int] = None,
) -> Dict[str, SimResult]:
    """Replicated vs hash-partitioned disk content for the traditional
    server (which misses most and so stresses the DFS hardest)."""
    requests = num_requests if num_requests is not None else bench_requests()
    trace = synthesize(trace_name, num_requests=requests)
    out: Dict[str, SimResult] = {}
    for layout, replicated in (("replicated", True), ("partitioned", False)):
        cfg = ClusterConfig(nodes=nodes, replicated_disks=replicated)
        out[layout] = run_simulation(trace, "traditional", config=cfg, passes=2)
    return out


def l2s_variant_ablation(
    trace_name: str = "calgary",
    nodes: int = 16,
    num_requests: Optional[int] = None,
) -> Dict[str, SimResult]:
    """Eager-local vs strict both-overloaded replication (DESIGN.md).

    Quantifies why the eager variant is the default: under round-robin
    arrivals the strict rule almost never replicates hot files.
    """
    requests = num_requests if num_requests is not None else bench_requests()
    trace = synthesize(trace_name, num_requests=requests)
    out: Dict[str, SimResult] = {}
    for label, eager in (("eager", True), ("strict", False)):
        policy = L2SPolicy(eager_local_replication=eager)
        out[label] = run_simulation(trace, policy, nodes=nodes, passes=2)
    return out
