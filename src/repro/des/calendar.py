"""Calendar-queue event scheduler (Brown, CACM 1988).

An alternative to the binary heap in :class:`repro.des.Environment`: events
are hashed by time into an array of "day" buckets spanning one "year"; the
dequeue scan walks the buckets in year order.  Push and pop are amortized
O(1) when the bucket width tracks the mean inter-event gap, which the
periodic resize maintains.

The queue stores the same ``(time, priority, eid, event)`` tuples the heap
does and pops them in exactly the same total order — ties at one simulated
time break by (priority, insertion order) — so a simulation run is
bit-identical regardless of which scheduler backs it (the scheduler
equivalence suite enforces this).

Correctness invariant: every queued item's time is >= the start of the
current scan bucket's window (``_top - _width``).  Pushes behind that
floor rewind the scan, so the year-order walk always returns the global
minimum (skipped buckets hold only next-year items, provably later than
anything found in the current year).
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Tuple

__all__ = ["CalendarQueue"]

#: Smallest bucket count the queue will shrink to.
_MIN_BUCKETS = 8
#: Grow (double the buckets) when the item count exceeds this multiple
#: of the bucket count.
_GROW_FACTOR = 2
#: Shrink (halve the buckets) only when the item count falls below
#: ``nbuckets // _SHRINK_DIV``.  Halving at ``nbuckets // 2`` — the exact
#: load a grow leaves behind — lets a workload that sawtooths around one
#: boundary pay a full O(n) resize on every swing; the quarter threshold
#: puts a 2x dead band between the grow and shrink triggers (kernel v3).
_SHRINK_DIV = 4


class CalendarQueue:
    """Bucketed priority queue over ``(time, priority, eid, event)`` tuples."""

    __slots__ = ("_buckets", "_nb", "_width", "_size", "_cur", "_top", "resizes")

    def __init__(self, width: float = 1.0, nbuckets: int = _MIN_BUCKETS):
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if nbuckets < 1:
            raise ValueError(f"need at least one bucket, got {nbuckets}")
        self._buckets: List[list] = [[] for _ in range(nbuckets)]
        self._nb = nbuckets
        self._width = width
        self._size = 0
        #: Number of O(n) bucket-array rebuilds so far (observability for
        #: the resize-hysteresis regression tests; never read by the scan).
        self.resizes = 0
        self._set_position(0.0)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self):
        """Yield every queued item in sorted order, without consuming.

        Gives the calendar queue the same inspectability as the heap
        (a plain iterable list) — the sanitizer's tests and leak-report
        cross-checks walk pending items through this.
        """
        return iter(sorted(
            item for bucket in self._buckets for item in bucket
        ))

    def _set_position(self, t: float) -> None:
        """Point the dequeue scan at the bucket whose window contains ``t``."""
        day = int(t / self._width)
        self._cur = day % self._nb
        self._top = (day + 1) * self._width

    # -- enqueue -----------------------------------------------------------

    # simlint: hotpath
    def push(self, item: Tuple) -> None:
        t = item[0]
        insort(self._buckets[int(t / self._width) % self._nb], item)
        self._size += 1
        if t < self._top - self._width:
            # The item landed behind the scan window: rewind so the year
            # scan cannot return a later item first.
            self._set_position(t)
        if self._size > _GROW_FACTOR * self._nb:
            self._resize(self._nb * 2)

    # -- dequeue -----------------------------------------------------------

    # simlint: hotpath
    def _find(self) -> Optional[int]:
        """Advance the scan to the bucket holding the minimal item.

        Returns the bucket index (the minimum is that bucket's head), or
        ``None`` when the queue is empty.  The year scan is the O(1) fast
        path; an unproductive full year falls back to a direct minimum
        search and a position jump (the classic sparse-schedule escape).
        """
        if not self._size:
            return None
        buckets, nb, width = self._buckets, self._nb, self._width
        cur, top = self._cur, self._top
        for _ in range(nb):
            b = buckets[cur]
            if b and b[0][0] < top:
                self._cur, self._top = cur, top
                return cur
            cur = (cur + 1) % nb
            top += width
        # Sparse schedule: nothing due this year.  Jump straight to the
        # globally minimal head (full-tuple comparison keeps tie-breaks).
        best_i = -1
        best = None
        for i, b in enumerate(buckets):
            if b and (best is None or b[0] < best):
                best, best_i = b[0], i
        assert best is not None
        self._cur = best_i
        self._top = (int(best[0] / width) + 1) * width
        return best_i

    # simlint: hotpath
    def peek(self) -> Optional[Tuple]:
        """The minimal item, or ``None`` when empty (not removed)."""
        i = self._find()
        return self._buckets[i][0] if i is not None else None

    # simlint: hotpath
    def popmin(self) -> Tuple:
        """Remove and return the minimal item.  Raises IndexError if empty."""
        i = self._find()
        if i is None:
            raise IndexError("pop from an empty CalendarQueue")
        item = self._buckets[i].pop(0)
        self._size -= 1
        if self._size < self._nb // _SHRINK_DIV and self._nb > _MIN_BUCKETS:
            self._resize(self._nb // 2)
        return item

    # -- resize ------------------------------------------------------------

    # simlint: coldpath
    def _resize(self, nbuckets: int) -> None:
        self.resizes += 1
        items = sorted(
            item for bucket in self._buckets for item in bucket
        )
        if len(items) > 1:
            spread = items[-1][0] - items[0][0]
            # Aim for ~1/3 of the live items per year so the scan usually
            # hits within a bucket or two.
            width = 3.0 * spread / len(items)
        else:
            width = self._width
        if width <= 0:
            width = self._width
        self._nb = nbuckets
        self._width = width
        self._buckets = [[] for _ in range(nbuckets)]
        # Items arrive in globally sorted order, so plain appends keep
        # every bucket internally sorted.
        for item in items:
            self._buckets[int(item[0] / width) % nbuckets].append(item)
        self._set_position(items[0][0] if items else 0.0)
