"""Measurement helpers for simulations.

:class:`TimeWeightedValue` tracks a piecewise-constant quantity (queue
length, connection count, ...) and reports its time-weighted average.
:class:`Tally` accumulates plain observations (latencies, sizes).
:class:`RateMeter` counts events over a window and reports a rate.

All three support ``reset()`` so a warmup phase can be discarded; the
semantics are identical across the meters: accumulated history clears,
the measurement window restarts at the current simulated time, and any
*current* level (a TimeWeightedValue's value) carries across the
boundary unchanged.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .core import Environment

__all__ = ["TimeWeightedValue", "Tally", "RateMeter"]


class TimeWeightedValue:
    """Time-weighted average of a piecewise-constant value."""

    __slots__ = ("env", "_value", "_last_change", "_area", "_t0", "_max")

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._value = initial
        self._last_change = env.now
        self._area = 0.0
        self._t0 = env.now
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        if value > self._max:
            self._max = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    @property
    def maximum(self) -> float:
        return self._max

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean since construction (or last reset)."""
        if now is None:
            now = self.env.now
        elapsed = now - self._t0
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / elapsed

    def reset(self) -> None:
        """Discard history at a warmup boundary: averaging restarts at
        the current time from the *current* value (which is kept — the
        tracked quantity itself doesn't change at the boundary)."""
        self._area = 0.0
        self._t0 = self.env.now
        self._last_change = self.env.now
        self._max = self._value


class Tally:
    """Streaming mean/variance/min/max of plain observations (Welford)."""

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max", "_sum")

    def __init__(self):
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    def record(self, x: float) -> None:
        self._n += 1
        self._sum += x
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self._n - 1) if self._n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._n else 0.0

    def reset(self) -> None:
        """Discard history at a warmup boundary: every accumulator
        returns to its initial state (explicit field reinit — calling
        ``self.__init__()`` for this is fragile under subclassing and
        hides the reset semantics from readers)."""
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0


class RateMeter:
    """Counts discrete events; reports count / elapsed-time."""

    __slots__ = ("env", "_count", "_t0", "_times", "_keep_times")

    def __init__(self, env: Environment, keep_times: bool = False):
        self.env = env
        self._count = 0
        self._t0 = env.now
        self._keep_times = keep_times
        self._times: List[float] = []

    def tick(self, n: int = 1) -> None:
        self._count += n
        if self._keep_times:
            self._times.append(self.env.now)

    @property
    def count(self) -> int:
        return self._count

    @property
    def times(self) -> List[float]:
        return self._times

    def rate(self, now: Optional[float] = None) -> float:
        if now is None:
            now = self.env.now
        elapsed = now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._count / elapsed

    def reset(self) -> None:
        """Discard history at a warmup boundary: the count (and any kept
        event times) clear and the rate window restarts at the current
        time, mirroring :meth:`TimeWeightedValue.reset` /
        :meth:`Tally.reset`."""
        self._count = 0
        self._t0 = self.env.now
        self._times.clear()
