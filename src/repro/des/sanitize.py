"""Runtime DES sanitizer: kernel invariant checking for sanitized runs.

The kernel's fast paths (free-list event pooling, two schedulers with a
delicate ``(time, priority, insertion-order)`` tie-break, callback chains)
buy speed with exactly the kind of aliasing and ordering hazards that are
invisible to spot tests.  The sanitizer wraps every scheduling entry point
and every event pop with invariant checks, at a cost that is acceptable
for smoke runs and CI but not for production sweeps — enable it with
``Environment(sanitize=True)`` or ``REPRO_DES_SANITIZE=1``.

Checks
------
* **Use-after-recycle** — every event recycled into a free list is marked
  with a bumped generation counter and poisoned pool membership; touching
  it again (scheduling it, or popping it while it sits in the pool) is
  reported with the event's provenance.
* **Time monotonicity / tie-break order** — pops must come out in strictly
  increasing ``(time, priority, eid)`` order (eids are unique, so equality
  is also a violation); scheduling behind ``env.now`` is caught at the
  source.
* **Double trigger** — re-scheduling an event that is already queued, or
  one whose callbacks have already run, is reported even when the
  ``Event.succeed``/``fail`` guards were bypassed by direct state writes
  (the failure mode of a buggy pool reset).
* **Leak report** — :meth:`DESSanitizer.finish` reports events created but
  never triggered, events triggered but stranded in the queue, processes
  that never terminated, in-flight operations (callback-chain requests
  registered through :meth:`DESSanitizer.op_begin`) that never completed,
  and interconnect messages sent but never delivered or dropped (the
  blind spot netfault injection opens), each with provenance.

A sanitized run is behaviourally identical to an unsanitized one: the
sanitizer only observes (the equivalence test asserts SimResult equality).
Violations raise :class:`SanitizerError` immediately and are also kept in
:attr:`DESSanitizer.violations`.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "DESSanitizer",
    "SanitizerError",
    "Violation",
    "LeakReport",
    "force_recycle",
]

#: Kernel files whose frames are skipped when attributing creation sites.
_KERNEL_FILE_MARKERS = ("repro/des/", "repro\\des\\")


def _creation_site() -> str:
    """``file:line`` of the first stack frame outside the DES kernel."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(marker in filename for marker in _KERNEL_FILE_MARKERS):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _EventRecord:
    """Provenance and lifecycle state for one tracked event."""

    __slots__ = ("event", "type_name", "site", "created_at", "state",
                 "generation", "last_eid", "sched_pop")

    def __init__(self, event: Any, created_at: float, site: str):
        #: Strong reference: keeps ids stable for every tracked event.
        self.event = event
        self.type_name = type(event).__name__
        self.site = site
        self.created_at = created_at
        #: "pending" -> "queued" -> ("pooled" -> "pending" -> ...) | done.
        self.state = "pending"
        #: Bumped every time the event is recycled into a free list.
        self.generation = 0
        #: eid the event was last scheduled under (None before scheduling).
        self.last_eid: Optional[int] = None
        #: Pop count at the moment the event was last scheduled.  Events
        #: scheduled *after* a pop are exempt from the tie-break
        #: comparison against that pop (they never coexisted in the
        #: queue); -1 = unknown/queue-injected, always compared.
        self.sched_pop = -1

    def provenance(self) -> str:
        gen = f", generation {self.generation}" if self.generation else ""
        eid = f", eid {self.last_eid}" if self.last_eid is not None else ""
        return (
            f"{self.type_name} created at {self.site} "
            f"(t={self.created_at:g}{eid}{gen}, state {self.state})"
        )


class Violation:
    """One detected kernel invariant violation."""

    __slots__ = ("kind", "message", "provenance", "time")

    def __init__(self, kind: str, message: str, provenance: str, time: float):
        self.kind = kind
        self.message = message
        self.provenance = provenance
        self.time = time

    def render(self) -> str:
        return f"[{self.kind}] t={self.time:g}: {self.message} — {self.provenance}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Violation {self.render()}>"


class SanitizerError(RuntimeError):
    """Raised at the point a kernel invariant violation is detected."""

    def __init__(self, violation: Violation):
        super().__init__(violation.render())
        self.violation = violation


class LeakReport:
    """End-of-run accounting of events that never completed their life."""

    __slots__ = ("never_triggered", "stranded", "orphaned_processes",
                 "stalled_ops", "undelivered_messages", "events_tracked")

    def __init__(
        self,
        never_triggered: List[str],
        stranded: List[str],
        orphaned_processes: List[str],
        stalled_ops: List[str],
        events_tracked: int,
        undelivered_messages: Optional[List[str]] = None,
    ):
        #: Provenance of events created but never succeeded/failed.
        self.never_triggered = never_triggered
        #: Provenance of events triggered but still queued (run stopped
        #: before they were processed).
        self.stranded = stranded
        #: Provenance of processes whose generator never terminated.
        self.orphaned_processes = orphaned_processes
        #: Descriptions of registered in-flight operations (callback-chain
        #: requests) that never reached completion or abort.
        self.stalled_ops = stalled_ops
        #: Interconnect messages sent but neither delivered nor recorded
        #: as dropped by the end of the run.  Counted messages dangling
        #: here mean the interconnect's bookkeeping lost track of a
        #: message — the failure mode dropped-message fault injection is
        #: most likely to introduce.
        self.undelivered_messages = (
            undelivered_messages if undelivered_messages is not None else []
        )
        self.events_tracked = events_tracked

    @property
    def clean(self) -> bool:
        return not (
            self.never_triggered
            or self.stranded
            or self.orphaned_processes
            or self.stalled_ops
            or self.undelivered_messages
        )

    def render(self) -> str:
        lines = [
            f"sanitizer: {self.events_tracked} events tracked; "
            + ("no leaks" if self.clean else "LEAKS DETECTED")
        ]
        for title, entries in (
            ("never-triggered events", self.never_triggered),
            ("triggered but unprocessed events", self.stranded),
            ("orphaned processes", self.orphaned_processes),
            ("stalled in-flight operations", self.stalled_ops),
            ("undelivered interconnect messages", self.undelivered_messages),
        ):
            if entries:
                lines.append(f"  {title} ({len(entries)}):")
                lines.extend(f"    {e}" for e in entries)
        return "\n".join(lines)


class DESSanitizer:
    """Observes one :class:`~repro.des.core.Environment`'s event traffic.

    Installed by ``Environment(sanitize=True)``; the kernel calls the
    ``on_*`` hooks from its scheduling and processing paths.  All state is
    keyed by ``id(event)`` — safe because the sanitizer keeps a strong
    reference to every live tracked event, so ids cannot be recycled
    underneath it.
    """

    def __init__(self, env: Any):
        self.env = env
        #: id(event) -> record, for events whose life is not over (pending,
        #: queued, or sitting in a free pool).
        self._records: Dict[int, _EventRecord] = {}
        #: ids currently sitting in the scheduler queue.
        self._scheduled: Set[int] = set()
        #: ids currently sitting in a free pool (recycled).
        self._pooled: Set[int] = set()
        #: Last popped (time, priority, eid) key — pops must increase.
        self._last_key: Optional[Tuple[float, int, int]] = None
        #: Every violation detected (each also raised as SanitizerError).
        self.violations: List[Violation] = []
        #: token -> (label, detail, begin time) for in-flight operations.
        self._ops: Dict[int, Tuple[str, str, float]] = {}
        self._op_seq = 0
        self.events_tracked = 0
        self.recycles = 0
        self.reuses = 0
        self.pops = 0

    # -- internals ---------------------------------------------------------

    def _record_for(self, event: Any) -> _EventRecord:
        """The record for ``event``, creating one if it is unknown.

        Events that inline ``Event.__init__`` (Request and friends) first
        become visible at their first scheduling; they get a record on
        demand so provenance is as close to the creation site as possible.
        """
        rec = self._records.get(id(event))
        if rec is None:
            rec = _EventRecord(event, self.env._now, _creation_site())
            self._records[id(event)] = rec
            self.events_tracked += 1
        return rec

    def _violate(self, kind: str, event: Any, message: str) -> None:
        rec = self._record_for(event)
        violation = Violation(kind, message, rec.provenance(), self.env._now)
        self.violations.append(violation)
        raise SanitizerError(violation)

    # -- kernel hooks ------------------------------------------------------

    def on_create(self, event: Any) -> None:
        """A new event object was constructed."""
        self._records[id(event)] = _EventRecord(
            event, self.env._now, _creation_site()
        )
        self.events_tracked += 1

    # The sanitizer is opt-in diagnostics (~4x overhead by design); its
    # bookkeeping is exempt from the hot-path allocation lint.
    # simlint: coldpath
    def on_reuse(self, event: Any) -> None:
        """An event was drawn from a free pool for reuse."""
        self.reuses += 1
        key = id(event)
        if key not in self._pooled:
            self._violate(
                "pool-corruption",
                event,
                "event drawn from a free pool it was never recycled into",
            )
        self._pooled.discard(key)
        rec = self._record_for(event)
        rec.state = "pending"
        rec.created_at = self.env._now
        rec.site = _creation_site()

    def on_schedule(self, event: Any, at: float) -> None:
        """``event`` is about to be pushed onto the scheduler queue."""
        now = self.env._now
        key = id(event)
        if key in self._pooled:
            self._violate(
                "use-after-recycle",
                event,
                "scheduling an event that sits in a free pool (a stale "
                "reference outlived the recycle)",
            )
        if key in self._scheduled:
            self._violate(
                "double-trigger",
                event,
                "event scheduled while already in the queue (double "
                "succeed/fail, or a pool reset of a live event)",
            )
        if event.callbacks is None:
            self._violate(
                "double-trigger",
                event,
                "event scheduled after its callbacks already ran",
            )
        if at < now:
            self._violate(
                "time-travel",
                event,
                f"scheduled at t={at:g}, behind the current time {now:g}",
            )
        rec = self._record_for(event)
        rec.state = "queued"
        rec.last_eid = self.env._eid + 1
        rec.sched_pop = self.pops
        self._scheduled.add(key)

    def on_pop(
        self,
        t: float,
        priority: int,
        eid: int,
        event: Any,
        prev_now: float,
    ) -> None:
        """The scheduler handed out ``event`` as the next minimum."""
        key_id = id(event)
        if key_id in self._pooled:
            self._violate(
                "use-after-recycle",
                event,
                "processing an event that sits in a free pool (it was "
                "recycled while still scheduled)",
            )
        if event.callbacks is None:
            self._violate(
                "double-trigger",
                event,
                "event popped twice: callbacks already ran",
            )
        if t < prev_now:
            self._violate(
                "time-travel",
                event,
                f"popped at t={t:g}, behind the clock {prev_now:g} (an "
                "event was inserted into the past behind the scheduler's "
                "back)",
            )
        key = (t, priority, eid)
        rec = self._records.get(key_id)
        # Tie-break contract: among events that coexisted in the queue,
        # pops come out in strictly increasing (time, priority, eid)
        # order.  An event scheduled after the previous pop (e.g. an
        # URGENT resume created while processing a same-time event) never
        # coexisted with it and is exempt from the comparison.
        coexisted = rec is None or rec.sched_pop < self.pops
        if (
            self._last_key is not None
            and key <= self._last_key
            and coexisted
        ):
            self._violate(
                "order-violation",
                event,
                f"pop order regressed: {key} after {self._last_key} — the "
                "scheduler broke the (time, priority, insertion-order) "
                "tie-break contract",
            )
        self.pops += 1
        self._last_key = key
        self._scheduled.discard(key_id)
        if rec is not None:
            rec.state = "processing"

    def on_recycle(self, event: Any) -> None:
        """``event`` was pushed onto a free pool after processing."""
        self.recycles += 1
        rec = self._record_for(event)
        rec.state = "pooled"
        rec.generation += 1
        self._pooled.add(id(event))

    def on_processed(self, event: Any) -> None:
        """``event`` finished processing and was *not* recycled.

        Its life is over, so the record is dropped (which also releases
        the strong reference and lets the object be freed).  Processes
        are only ever popped at generator termination, so a record left
        behind for a process always means an orphan.
        """
        key = id(event)
        self._scheduled.discard(key)
        self._records.pop(key, None)

    # -- in-flight operation tracking --------------------------------------

    def op_begin(self, label: str, detail: str = "") -> int:
        """Register a multi-event operation (e.g. one callback-chain
        request) as in flight; returns a token for :meth:`op_end`.

        Individual events inside a callback chain complete one by one, so
        a chain that stalls waiting on a broken resource leaves *no*
        pending event for the leak report to see.  Operation tracking
        closes that blind spot: anything begun but never ended shows up
        in :meth:`finish` as a stalled operation.
        """
        self._op_seq += 1
        self._ops[self._op_seq] = (label, detail, self.env._now)
        return self._op_seq

    def op_end(self, token: int) -> None:
        """Mark the operation behind ``token`` as completed (or aborted)."""
        self._ops.pop(token, None)

    # -- reporting ---------------------------------------------------------

    def finish(self) -> LeakReport:
        """End-of-run leak report (does not raise; render and inspect)."""
        from .core import PENDING, Process

        never: List[str] = []
        stranded: List[str] = []
        orphans: List[str] = []
        for key, rec in sorted(
            self._records.items(), key=lambda kv: (kv[1].created_at, kv[0])
        ):
            if rec.state == "pooled":
                continue  # at rest in a free list: a completed life
            event = rec.event
            if isinstance(event, Process):
                if event._value is PENDING:
                    orphans.append(rec.provenance())
                continue
            if event._value is PENDING:
                never.append(rec.provenance())
            elif key in self._scheduled:
                stranded.append(rec.provenance())
        stalled: List[str] = []
        undelivered: List[str] = []
        for label, detail, begun in self._ops.values():
            text = (
                f"{label} ({detail}) begun at t={begun:g}" if detail
                else f"{label} begun at t={begun:g}"
            )
            # The interconnect registers every counted message as an
            # operation at send time and ends it at delivery or drop;
            # anything left is a message its accounting lost.
            if label == "interconnect-message":
                undelivered.append(text)
            else:
                stalled.append(text)
        return LeakReport(never, stranded, orphans, stalled,
                          self.events_tracked,
                          undelivered_messages=undelivered)


def force_recycle(env: Any, event: Any) -> None:
    """Force ``event`` into its environment's free pool, skipping every
    safety check the kernel applies (refcount guard, processed-state).

    This exists for the sanitizer's own mutation tests: it reproduces the
    exact buggy state a use-after-recycle defect would create, so the
    tests can assert the sanitizer catches it.  Never call it from
    simulation code.
    """
    from .core import Timeout, _Callback

    if isinstance(event, Timeout):
        pool = env._timeout_pool
    elif isinstance(event, _Callback):
        pool = env._cb_pool
    else:
        raise TypeError(f"{event!r} is not a poolable event")
    if pool is None:
        raise RuntimeError("event pooling is disabled in this environment")
    pool.append(event)
    if env._san is not None:
        env._san.on_recycle(event)
