"""``repro.des`` — a small, deterministic discrete-event simulation kernel.

A from-scratch, simpy-style kernel: processes are Python generators that
yield events; :class:`Environment` advances a global clock over a binary
heap of scheduled events.  See :mod:`repro.des.core` for the execution
model and :mod:`repro.des.resources` / :mod:`repro.des.stores` for the
queueing primitives the cluster simulator is built on.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, period):
...     while True:
...         yield env.timeout(period)
...         log.append((name, env.now))
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4)
>>> log
[('fast', 1), ('fast', 2), ('slow', 2), ('fast', 3)]
"""

from .core import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    Process,
    StopProcess,
    Timeout,
)
from .events import AllOf, AnyOf, Condition, ConditionValue
from .monitor import RateMeter, Tally, TimeWeightedValue
from .sanitize import DESSanitizer, LeakReport, SanitizerError, Violation
from .resources import (
    Container,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .stores import FilterStore, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopProcess",
    "EmptySchedule",
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "Store",
    "FilterStore",
    "TimeWeightedValue",
    "Tally",
    "RateMeter",
    "DESSanitizer",
    "SanitizerError",
    "LeakReport",
    "Violation",
]
