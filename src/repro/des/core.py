"""Core of the discrete-event simulation kernel.

This module provides a small, self-contained, simpy-style kernel:
an :class:`Environment` owning a time-ordered event queue, :class:`Event`
objects with success/failure semantics, and :class:`Process` objects that
drive Python generators, suspending on the events they ``yield``.

The kernel is deterministic: events scheduled for the same simulated time
are processed in (priority, insertion-order) order, so a simulation run is
exactly reproducible from its random seed.

Design notes
------------
The simulator in :mod:`repro.sim` schedules on the order of millions of
events per run, so this module is written for speed as much as clarity
(see ``docs/KERNEL.md`` for the full story):

* ``__slots__`` everywhere on the hot classes;
* two interchangeable schedulers behind one ``(time, priority, eid,
  event)`` contract — a C-accelerated binary heap (default) and a
  calendar queue (:mod:`repro.des.calendar`), selected per environment
  via ``Environment(scheduler=...)`` or the ``REPRO_DES_SCHEDULER``
  environment variable;
* a free-list pool recycling :class:`Timeout` and internal callback
  events once processed (``REPRO_DES_POOL=0`` disables it);
* :meth:`Environment.call_later` / :meth:`Event.succeed_at` fast paths
  so resources and callback chains can schedule completions without
  allocating intermediate events or generator frames;
* zero-delay *now queues* (kernel v3): events scheduled at exactly the
  current simulated time — resource grants, ``succeed()``, process
  resumption, interrupts — bypass the scheduler entirely and land in
  two per-priority FIFO deques drained before the clock advances.  The
  drain respects the exact global (time, priority, eid) order (heap
  items at the current time were scheduled earlier and therefore carry
  smaller ids than any now-queue entry), so results are bit-identical
  to routing everything through the scheduler; it just skips the
  O(log n) push/pop and the entry-tuple allocation for the roughly
  half of all events that fire "now".

All of those fast paths are risky enough that the kernel carries an
optional runtime sanitizer (``Environment(sanitize=True)`` or
``REPRO_DES_SANITIZE=1``): every scheduling entry point and every pop is
then routed through :mod:`repro.des.sanitize`'s invariant checks
(use-after-recycle poisoning, time monotonicity, tie-break order, double
triggers, end-of-run leak accounting).  When the sanitizer is off the
hooks reduce to a single predictable-branch ``None`` check per entry
point, which the bench regression gate shows is free.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush
from math import inf
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .events import Condition

try:
    from sys import getrefcount as _refcount
except ImportError:  # pragma: no cover - non-CPython: pooling disabled
    _refcount = None

from .calendar import CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopProcess",
    "EmptySchedule",
    "PENDING",
    "URGENT",
    "NORMAL",
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
]

#: Sentinel for the value of an event that has not been triggered yet.
PENDING: Any = object()

#: Scheduling priority for events that must run before ordinary events at
#: the same simulated time (used internally when resuming processes).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Recognized scheduler backends.
SCHEDULERS = ("heap", "calendar")

#: Scheduler used when neither the constructor nor ``REPRO_DES_SCHEDULER``
#: picks one.  The binary heap won the validation benchmarks
#: (``repro bench``): heapq's C implementation beats the pure-Python
#: calendar queue on every canonical scenario, so it stays the default;
#: the calendar queue remains selectable and bit-identical.
DEFAULT_SCHEDULER = "heap"

#: Upper bound on each per-environment free list (events, not bytes).
_POOL_MAX = 4096

# Bound by repro.des.events at import time (see _lazy_conditions); keeps
# Event.__and__/__or__ and Environment.all_of/any_of free of per-call
# imports without a circular module import.
_AllOf = None
_AnyOf = None


def _lazy_conditions():
    """Bind the condition classes on first use (core imported alone)."""
    global _AllOf, _AnyOf
    if _AllOf is None:
        from .events import AllOf, AnyOf

        _AllOf, _AnyOf = AllOf, AnyOf
    return _AllOf, _AnyOf


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopProcess(Exception):
    """Graceful early exit from a process.

    ``raise StopProcess(value)`` inside a process generator terminates the
    process successfully with ``value`` as its result, mirroring
    ``return value``.  Provided mainly for helper functions that cannot use
    a plain ``return`` because they are not themselves generators.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process may catch the exception and continue; the event
    it was waiting for remains pending and may be re-yielded.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """Whatever was passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """An event that may eventually be triggered and carry a value.

    Events move through three states:

    1. *pending* — created, not yet triggered;
    2. *triggered* — a value (or failure) has been set and the event sits in
       the environment's queue;
    3. *processed* — its callbacks have run.

    Processes wait for events by yielding them.  Multiple processes may wait
    on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        #: The environment the event lives in.
        self.env = env
        #: List of callables invoked (with the event) when processed.
        #: ``None`` once the event has been processed.
        # Fresh-event contract: one list per activation; recycled
        # events get theirs back in the pool reset paths below.
        self.callbacks: Optional[list] = []  # simlint: disable=REP104
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        if env._san is not None:
            env._san.on_create(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.callbacks is None else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or failure has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).

        Raises :class:`AttributeError` if the event is still pending.
        """
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    # simlint: hotpath
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    # simlint: hotpath
    def succeed_at(self, delay: float, value: Any = None) -> "Event":
        """Trigger successfully, processed ``delay`` time units from now.

        The completion fast path: where ``succeed()`` fires callbacks at
        the current time, ``succeed_at(d)`` fires them at ``now + d``
        without allocating an intermediate :class:`Timeout`.  The event
        reads as *triggered* immediately (its value is set), exactly like
        a :class:`Timeout` between construction and expiry.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, delay)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Every process waiting on the event will have the exception thrown
        into it.  If no process handles the failure the environment's
        :meth:`Environment.run` re-raises it (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defuse_of(event)
            self.fail(event._value)

    @staticmethod
    def _defuse_of(event: "Event") -> None:
        event._defused = True

    def defused(self) -> None:
        """Mark a failed event as handled so ``run()`` won't re-raise it."""
        self._defused = True

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        allof = _AllOf
        if allof is None:
            allof, _ = _lazy_conditions()
        return allof(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        anyof = _AnyOf
        if anyof is None:
            _, anyof = _lazy_conditions()
        return anyof(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed ``delay`` of simulated time.

    Instances created through :meth:`Environment.timeout` are recycled via
    a free list once processed, *if* nothing outside the kernel still
    references them (checked by refcount — see ``docs/KERNEL.md`` for the
    pooling rules).  Retaining a reference to a fired Timeout is therefore
    always safe: the retained object simply is not recycled.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class _Callback(Event):
    """Internal pooled event driving callback chains (never user-visible).

    Created only by :meth:`Environment.call_later`; recycled
    unconditionally after processing, so references must never outlive
    the callback invocation.
    """

    __slots__ = ()


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running process: drives a generator, waits on yielded events.

    A process is itself an event that triggers when the generator returns
    (successfully, with the generator's return value) or raises
    (as a failure).  Other processes can therefore wait for it to finish by
    yielding it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: Event the process is currently waiting on (None when running or
        #: terminated).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process({self.name}) at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process resumes immediately (at the current simulated time,
        before ordinary events).  Interrupting a terminated process is an
        error; interrupting a process that is about to resume anyway is
        allowed — the interrupt wins.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, URGENT)

    # -- generator driving --------------------------------------------------

    # simlint: hotpath
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/failure of ``event``."""
        if self._value is not PENDING:
            # Already terminated (e.g. interrupted to death while an older
            # wake-up was in flight).  Nothing to do.
            return
        # Detach from the event we were waiting on (the interrupt path
        # resumes us while self._target is still pending).
        target = self._target
        if target is not None and event is not target:
            # Late interrupt: forget the original target's callback so a
            # later trigger does not resume us twice.
            try:
                target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None
        env = self.env
        env._active_proc = self
        # Hot loop: localize the generator methods and the schedule hook;
        # each send() drives the process to its next yield.
        generator = self._generator
        send = generator.send
        schedule = env._schedule

        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                schedule(self, NORMAL)
                break
            except StopProcess as exc:
                generator.close()
                self._ok = True
                self._value = exc.value
                schedule(self, NORMAL)
                break
            except BaseException as exc:
                generator.close()
                self._ok = False
                self._value = exc
                schedule(self, NORMAL)
                break

            if not isinstance(next_event, Event):
                # Cold error branch: a process yielded garbage and is
                # about to die; the diagnostic f-string never runs on
                # the event-stepping fast path.
                exc = RuntimeError(
                    f"process {self.name!r} "  # simlint: disable=REP104
                    f"yielded a non-event: {next_event!r}"
                )
                generator.close()
                self._ok = False
                self._value = exc
                schedule(self, NORMAL)
                break

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Event already processed: feed its value straight back in.
            event = next_event

        env._active_proc = None


class Environment:
    """Execution environment: simulated clock plus the event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock.
    scheduler:
        ``"heap"`` (binary heap, the validated default) or ``"calendar"``
        (calendar queue).  ``None`` consults the ``REPRO_DES_SCHEDULER``
        environment variable, then :data:`DEFAULT_SCHEDULER`.  Both obey
        the identical (time, priority, insertion-order) contract.
    pool_events:
        Enable the Timeout/callback-event free lists.  ``None`` consults
        ``REPRO_DES_POOL`` (default on; set ``0`` to disable).
    sanitize:
        Route every scheduling entry point and pop through the runtime
        sanitizer (:mod:`repro.des.sanitize`): use-after-recycle
        poisoning, monotonicity/tie-break invariants, double-trigger
        detection, leak accounting.  ``None`` consults
        ``REPRO_DES_SANITIZE`` (default off).  Behaviour (results, event
        order) is identical either way; sanitized runs are slower.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_cal",
        "_now_u",
        "_now_n",
        "_eid",
        "_active_proc",
        "_timeout_pool",
        "_cb_pool",
        "_req_pool",
        "_preq_pool",
        "_scheduler",
        "_san",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: Optional[str] = None,
        pool_events: Optional[bool] = None,
        sanitize: Optional[bool] = None,
    ):
        self._now = float(initial_time)
        if sanitize is None:
            sanitize = os.environ.get("REPRO_DES_SANITIZE", "0") != "0"
        if sanitize:
            from .sanitize import DESSanitizer

            self._san = DESSanitizer(self)
        else:
            self._san = None
        if scheduler is None:
            scheduler = os.environ.get("REPRO_DES_SCHEDULER", DEFAULT_SCHEDULER)
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick one of {SCHEDULERS}"
            )
        self._scheduler = scheduler
        if scheduler == "heap":
            # Heap of (time, priority, eid, event).
            self._queue: Optional[list] = []
            self._cal: Optional[CalendarQueue] = None
        else:
            self._queue = None
            self._cal = CalendarQueue()
        if pool_events is None:
            pool_events = os.environ.get("REPRO_DES_POOL", "1") != "0"
        if _refcount is None:  # pragma: no cover - non-CPython
            pool_events = False
        # The free lists are None when pooling is off, so the hot-path
        # check is a single identity test.
        self._timeout_pool: Optional[list] = [] if pool_events else None
        self._cb_pool: Optional[list] = [] if pool_events else None
        # Resource request free lists (v3): filled by Resource.free()
        # under the same refcount rules, drained by Resource.request().
        self._req_pool: Optional[list] = [] if pool_events else None
        self._preq_pool: Optional[list] = [] if pool_events else None
        # Zero-delay now queues (kernel v3), one per priority level.
        # Sanitized environments leave them empty: every event then flows
        # through the fully-checked scheduler path, and the sanitizer's
        # pop-order checks certify exactly the order the now queues
        # reproduce.
        self._now_u: deque = deque()
        self._now_n: deque = deque()
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- public API ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the scheduler backend ("heap" or "calendar")."""
        return self._scheduler

    @property
    def pooling(self) -> bool:
        """True when the event free lists are enabled."""
        return self._timeout_pool is not None

    @property
    def sanitizer(self):
        """The :class:`~repro.des.sanitize.DESSanitizer` (None when off)."""
        return self._san

    @property
    def sanitized(self) -> bool:
        """True when the runtime sanitizer is active."""
        return self._san is not None

    @property
    def event_count(self) -> int:
        """Total events scheduled so far (the benchmark work metric)."""
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced (None between events)."""
        return self._active_proc

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    # simlint: hotpath
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now.

        Draws from the free list when pooling is enabled; see the class
        docstring for the (narrow) aliasing caveat.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            t = pool.pop()
            if self._san is not None:
                self._san.on_reuse(t)
            # Pool-reset contract: a recycled Timeout needs its own
            # callbacks list (callers append to it).
            t.callbacks = []  # simlint: disable=REP104
            t._value = value
            t._ok = True
            t._defused = False
            t.delay = delay
            self._schedule(t, NORMAL, delay)
            return t
        return Timeout(self, delay, value)

    # simlint: hotpath
    def call_later(
        self,
        delay: float,
        fn: Callable[[Event], None],
        value: Any = None,
        priority: int = NORMAL,
    ) -> Event:
        """Run ``fn(event)`` after ``delay`` — the callback-chain fast path.

        Uses a pooled internal event: no Timeout, no generator, no
        process.  The returned handle is recycled as soon as ``fn`` has
        run and must not be retained afterwards.  ``event.value`` is
        ``value`` (handy for chains that thread a payload through).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._cb_pool
        san = self._san
        if pool:
            ev = pool.pop()
            if san is not None:
                san.on_reuse(ev)
            ev._value = value
            ev._ok = True
            ev._defused = False
        else:
            ev = _Callback(self)
            ev._value = value
        # The single-callback list IS call_later's payload.
        ev.callbacks = [fn]  # simlint: disable=REP104
        # Inlined _schedule (this is the hottest scheduling entry point).
        now = self._now
        t = now + delay
        if san is None:
            if t == now:
                # Zero-delay fast path: FIFO order is eid order.
                self._eid += 1
                (self._now_u if priority == 0 else self._now_n).append(ev)
                return ev
        else:
            san.on_schedule(ev, t)
        eid = self._eid = self._eid + 1
        q = self._queue
        if q is not None:
            heappush(q, (t, priority, eid, ev))
        else:
            self._cal.push((t, priority, eid, ev))
        return ev

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> "Condition":
        allof = _AllOf
        if allof is None:
            allof, _ = _lazy_conditions()
        return allof(self, events)

    def any_of(self, events: Iterable[Event]) -> "Condition":
        anyof = _AnyOf
        if anyof is None:
            _, anyof = _lazy_conditions()
        return anyof(self, events)

    def schedule_callback(
        self, delay: float, callback: Callable[[], None]
    ) -> Event:
        """Run ``callback()`` after ``delay`` without creating a process.

        The returned event handle is pooled: it is recycled once the
        callback has run, so do not retain it past that point.
        """
        return self.call_later(delay, lambda _e: callback())

    # -- scheduling ---------------------------------------------------------

    # simlint: hotpath
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        now = self._now
        t = now + delay
        san = self._san
        if san is None:
            if t == now:
                # Zero-delay fast path (kernel v3): the event fires at the
                # current time, so it skips the scheduler and joins the
                # per-priority now queue.  FIFO order there is eid order,
                # and every scheduler entry at the current time was pushed
                # earlier (smaller eid), so the drain in step()/run() keeps
                # the exact (time, priority, eid) total order.
                self._eid += 1
                (self._now_u if priority == 0 else self._now_n).append(event)
                return
        else:
            san.on_schedule(event, t)
        eid = self._eid = self._eid + 1
        q = self._queue
        if q is not None:
            heappush(q, (t, priority, eid, event))
        else:
            self._cal.push((t, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._now_u or self._now_n:
            return self._now
        q = self._queue
        if q is not None:
            return q[0][0] if q else inf
        head = self._cal.peek()
        return head[0] if head is not None else inf

    # simlint: hotpath
    def step(self) -> None:
        """Process the next event.  Raises :class:`EmptySchedule` if none.

        The pop merges three sources in exact (time, priority, eid)
        order: the scheduler (heap or calendar queue) and the two
        zero-delay now queues.  Scheduler entries at the current time
        always precede same-priority now-queue entries (they carry
        smaller ids); an urgent now-queue entry precedes any NORMAL
        entry at the current time regardless of id.
        """
        q = self._queue
        if q is not None:
            head = q[0] if q else None
        else:
            head = self._cal.peek()
        now = self._now
        now_u = self._now_u
        event: Optional[Event] = None
        if now_u:
            if head is None or head[1] != URGENT or head[0] != now:
                event = now_u.popleft()
        elif head is None or head[0] != now:
            now_n = self._now_n
            if now_n:
                event = now_n.popleft()
        if event is not None:
            # Now-queue drain: the clock does not move, and the
            # sanitizer is never active here (sanitized environments
            # route everything through the scheduler below).
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
            cls = event.__class__
            if cls is Timeout:
                pool = self._timeout_pool
                if (
                    pool is not None
                    and len(pool) < _POOL_MAX
                    and _refcount(event) == 2
                ):
                    event._value = PENDING
                    pool.append(event)
            elif cls is _Callback:
                pool = self._cb_pool
                if (
                    pool is not None
                    and len(pool) < _POOL_MAX
                    and _refcount(event) == 2
                ):
                    event._value = PENDING
                    pool.append(event)
            return
        if head is None:
            raise EmptySchedule()
        if q is not None:
            t, priority, eid, event = heappop(q)
        else:
            t, priority, eid, event = self._cal.popmin()
        # Drop the peeked entry tuple (it is the one just popped): a live
        # reference would keep the event's refcount above the recycle
        # threshold below.
        head = None
        san = self._san
        if san is not None:
            san.on_pop(t, priority, eid, event, self._now)
        self._now = t

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled this failure.
            raise event._value

        # Free-list recycling.  An event is recyclable only when nothing
        # outside this frame still references it: refcount 2 = the `event`
        # local plus getrefcount's argument (3 when the sanitizer's record
        # holds its extra reference).  A generator that kept the Timeout
        # it yielded, a condition holding its constituents, or a caller
        # retaining a call_later handle all raise the count and (safely)
        # exempt that object from recycling.
        recyclable = 2 if san is None else 3
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
            if (
                pool is not None
                and len(pool) < _POOL_MAX
                and _refcount(event) == recyclable
            ):
                event._value = PENDING  # poison stale reads
                pool.append(event)
                if san is not None:
                    san.on_recycle(event)
            elif san is not None:
                san.on_processed(event)
        elif cls is _Callback:
            pool = self._cb_pool
            if (
                pool is not None
                and len(pool) < _POOL_MAX
                and _refcount(event) == recyclable
            ):
                event._value = PENDING
                pool.append(event)
                if san is not None:
                    san.on_recycle(event)
            elif san is not None:
                san.on_processed(event)
        elif san is not None:
            san.on_processed(event)

    # simlint: hotpath
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time; ``until == now`` is a documented
        no-op so sweep drivers can resume in fixed windows), or an
        :class:`Event` (run until it is processed and return its value).
        """
        stop_at = inf
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                # Once per run() call (until-Event setup), not per event.
                done = []  # simlint: disable=REP104
                stop_event.callbacks.append(
                    lambda _e: done.append(True)  # simlint: disable=REP104
                )
                while not done:
                    try:
                        self.step()
                    except EmptySchedule:
                        raise RuntimeError(
                            "run(until=event): schedule drained before the "
                            "event triggered"
                        ) from None
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be earlier than now "
                    f"({self._now})"
                )
            if stop_at == self._now:
                # No-op: events exactly at `now` stay unprocessed, exactly
                # as a previous run(until=now) left them.
                return None

        q = self._queue
        if self._san is not None:
            # Sanitized: every event must flow through the fully-checked
            # step() path, so the inlined loops below are skipped.
            step = self.step
            while True:
                if self.peek() >= stop_at:
                    break
                step()
        elif q is not None:
            # The heap main loop inlines step(): at millions of events per
            # run the per-event call overhead is measurable.  Keep the two
            # bodies in sync (step() remains the single-event API).  The
            # pop merges the heap with the zero-delay now queues in exact
            # (time, priority, eid) order: heap entries at the current
            # time were scheduled earlier (smaller eid) than any now-queue
            # entry, and urgent now-queue entries overtake NORMAL heap
            # entries at the current time (priority compares first).
            timeout_pool = self._timeout_pool
            cb_pool = self._cb_pool
            now_u = self._now_u
            now_n = self._now_n
            pop = heappop
            pop_u = now_u.popleft
            pop_n = now_n.popleft
            now = self._now
            while True:
                # NB: the heap head is deliberately never bound to a
                # local — a lingering reference to the popped entry tuple
                # would keep the event's refcount above the recycle
                # threshold and silently disable the free lists.
                if now_u:
                    if q and q[0][0] == now and q[0][1] == 0:
                        event = pop(q)[3]
                    else:
                        event = pop_u()
                elif q:
                    t = q[0][0]
                    if t == now:
                        event = pop(q)[3]
                    elif now_n:
                        event = pop_n()
                    elif t >= stop_at:
                        break
                    else:
                        self._now = now = t
                        event = pop(q)[3]
                elif now_n:
                    event = pop_n()
                else:
                    break
                callbacks = event.callbacks
                event.callbacks = None
                # Almost every event carries exactly one callback (the
                # grant/chain continuation); skip the iterator for it.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                cls = event.__class__
                if cls is _Callback:
                    if (
                        cb_pool is not None
                        and len(cb_pool) < _POOL_MAX
                        and _refcount(event) == 2
                    ):
                        event._value = PENDING
                        cb_pool.append(event)
                elif cls is Timeout:
                    if (
                        timeout_pool is not None
                        and len(timeout_pool) < _POOL_MAX
                        and _refcount(event) == 2
                    ):
                        event._value = PENDING
                        timeout_pool.append(event)
        else:
            # Calendar-queue twin of the loop above (peek/popmin instead
            # of direct heap indexing); keep the bodies in sync.
            cal = self._cal
            timeout_pool = self._timeout_pool
            cb_pool = self._cb_pool
            now_u = self._now_u
            now_n = self._now_n
            pop_u = now_u.popleft
            pop_n = now_n.popleft
            now = self._now
            while True:
                head = cal.peek() if cal else None
                if now_u:
                    if head is not None and head[0] == now and head[1] == 0:
                        event = cal.popmin()[3]
                    else:
                        event = pop_u()
                elif head is not None:
                    t = head[0]
                    if t == now:
                        event = cal.popmin()[3]
                    elif now_n:
                        event = pop_n()
                    elif t >= stop_at:
                        break
                    else:
                        self._now = now = t
                        event = cal.popmin()[3]
                elif now_n:
                    event = pop_n()
                else:
                    break
                # Drop the peeked entry tuple: a live reference to it
                # would hold the popped event's refcount above the
                # recycle threshold and disable the free lists.
                head = None
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                cls = event.__class__
                if cls is _Callback:
                    if (
                        cb_pool is not None
                        and len(cb_pool) < _POOL_MAX
                        and _refcount(event) == 2
                    ):
                        event._value = PENDING
                        cb_pool.append(event)
                elif cls is Timeout:
                    if (
                        timeout_pool is not None
                        and len(timeout_pool) < _POOL_MAX
                        and _refcount(event) == 2
                    ):
                        event._value = PENDING
                        timeout_pool.append(event)
        if stop_at is not inf:
            self._now = stop_at
        return None
