"""Core of the discrete-event simulation kernel.

This module provides a small, self-contained, simpy-style kernel:
an :class:`Environment` owning a time-ordered event heap, :class:`Event`
objects with success/failure semantics, and :class:`Process` objects that
drive Python generators, suspending on the events they ``yield``.

The kernel is deterministic: events scheduled for the same simulated time
are processed in (priority, insertion-order) order, so a simulation run is
exactly reproducible from its random seed.

Design notes
------------
The simulator in :mod:`repro.sim` schedules on the order of millions of
events per run, so this module is written for speed as much as clarity:
``__slots__`` everywhere on the hot classes, a plain ``heapq`` of tuples,
and no per-event allocations beyond the event object itself.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopProcess",
    "EmptySchedule",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for the value of an event that has not been triggered yet.
PENDING: Any = object()

#: Scheduling priority for events that must run before ordinary events at
#: the same simulated time (used internally when resuming processes).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopProcess(Exception):
    """Graceful early exit from a process.

    ``raise StopProcess(value)`` inside a process generator terminates the
    process successfully with ``value`` as its result, mirroring
    ``return value``.  Provided mainly for helper functions that cannot use
    a plain ``return`` because they are not themselves generators.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process may catch the exception and continue; the event
    it was waiting for remains pending and may be re-yielded.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """Whatever was passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """An event that may eventually be triggered and carry a value.

    Events move through three states:

    1. *pending* — created, not yet triggered;
    2. *triggered* — a value (or failure) has been set and the event sits in
       the environment's queue;
    3. *processed* — its callbacks have run.

    Processes wait for events by yielding them.  Multiple processes may wait
    on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        #: The environment the event lives in.
        self.env = env
        #: List of callables invoked (with the event) when processed.
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.callbacks is None else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or failure has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).

        Raises :class:`AttributeError` if the event is still pending.
        """
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Every process waiting on the event will have the exception thrown
        into it.  If no process handles the failure the environment's
        :meth:`Environment.run` re-raises it (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defuse_of(event)
            self.fail(event._value)

    @staticmethod
    def _defuse_of(event: "Event") -> None:
        event._defused = True

    def defused(self) -> None:
        """Mark a failed event as handled so ``run()`` won't re-raise it."""
        self._defused = True

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        from .events import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        from .events import AnyOf

        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed ``delay`` of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running process: drives a generator, waits on yielded events.

    A process is itself an event that triggers when the generator returns
    (successfully, with the generator's return value) or raises
    (as a failure).  Other processes can therefore wait for it to finish by
    yielding it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: Event the process is currently waiting on (None when running or
        #: terminated).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process({self.name}) at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process resumes immediately (at the current simulated time,
        before ordinary events).  Interrupting a terminated process is an
        error; interrupting a process that is about to resume anyway is
        allowed — the interrupt wins.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, URGENT)

    # -- generator driving --------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/failure of ``event``."""
        env = self.env
        if self._value is not PENDING:
            # Already terminated (e.g. interrupted to death while an older
            # wake-up was in flight).  Nothing to do.
            return
        # Detach from the event we were waiting on (the interrupt path
        # resumes us while self._target is still pending).
        if self._target is not None and event is not self._target:
            # Late interrupt: forget the original target's callback so a
            # later trigger does not resume us twice.
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._schedule(self, NORMAL)
                break
            except StopProcess as exc:
                self._generator.close()
                self._ok = True
                self._value = exc.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._generator.close()
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                break

            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                break

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Event already processed: feed its value straight back in.
            event = next_event

        env._active_proc = None


class Environment:
    """Execution environment: simulated clock plus the event queue."""

    __slots__ = ("_now", "_queue", "_eid", "_active_proc")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # Heap of (time, priority, eid, event).
        self._queue: list = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- public API ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced (None between events)."""
        return self._active_proc

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AllOf

        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> "Condition":
        from .events import AnyOf

        return AnyOf(self, events)

    def schedule_callback(
        self, delay: float, callback: Callable[[], None]
    ) -> Event:
        """Run ``callback()`` after ``delay`` without creating a process."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _e: callback())
        return ev

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else inf

    def step(self) -> None:
        """Process the next event.  Raises :class:`EmptySchedule` if none."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled this failure.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed and return its value).
        """
        stop_at = inf
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                done = []
                stop_event.callbacks.append(lambda _e: done.append(True))
                while not done:
                    try:
                        self.step()
                    except EmptySchedule:
                        raise RuntimeError(
                            "run(until=event): schedule drained before the "
                            "event triggered"
                        ) from None
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value
            stop_at = float(until)
            if stop_at <= self._now:
                raise ValueError(
                    f"until ({stop_at}) must be greater than now ({self._now})"
                )

        while self._queue and self._queue[0][0] < stop_at:
            self.step()
        if stop_at is not inf:
            self._now = stop_at
        return None
