"""Object stores: blocking FIFO queues of arbitrary items.

:class:`Store` is the message-passing primitive used by the cluster's
messaging layer: producers ``put`` items, consumers ``get`` them, and both
sides block when the store is full/empty.  :class:`FilterStore` lets a
consumer wait for the first item matching a predicate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List

from .core import Environment, Event, PENDING

__all__ = ["Store", "FilterStore", "StorePut", "StoreGet"]


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO store of items with capacity-bounded, blocking put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; blocks while the store is full."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the oldest item; blocks while empty."""
        return StoreGet(self)

    # -- internals ---------------------------------------------------------

    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(put.item)
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if self.items:
            get.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue:
                put = self._put_queue[0]
                if put._value is not PENDING:  # cancelled/failed externally
                    self._put_queue.popleft()
                    continue
                if self._do_put(put):
                    self._put_queue.popleft()
                    progressed = True
                break
            while self._get_queue:
                get = self._get_queue[0]
                if get._value is not PENDING:
                    self._get_queue.popleft()
                    continue
                if self._do_get(get):
                    self._get_queue.popleft()
                    progressed = True
                break


class FilterStore(Store):
    """Store whose consumers may wait for an item matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _do_get(self, get: StoreGet) -> bool:
        assert isinstance(get, FilterStoreGet)
        for i, item in enumerate(self.items):
            if get.filter(item):
                del self.items[i]
                get.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        # Unlike the plain store, a blocked head-of-line get must not stop
        # later gets whose filters match available items.
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue:
                put = self._put_queue[0]
                if put._value is not PENDING:
                    self._put_queue.popleft()
                    continue
                if self._do_put(put):
                    self._put_queue.popleft()
                    progressed = True
                break
            for get in list(self._get_queue):
                if get._value is not PENDING:
                    self._get_queue.remove(get)
                    continue
                if self._do_get(get):
                    self._get_queue.remove(get)
                    progressed = True
