"""Composite events: wait for *all* or *any* of a set of events."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

from .core import Event, Environment, PENDING

__all__ = ["Condition", "AllOf", "AnyOf", "ConditionValue"]


class ConditionValue:
    """Ordered mapping of the events of a condition to their values.

    Only events that had triggered by the time the condition fired are
    included.  Behaves like a read-only ordered dict keyed by event.
    """

    __slots__ = ("events",)

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e.value for e in self.events)

    def items(self):
        return ((e, e.value) for e in self.events)

    def todict(self) -> Dict[Event, Any]:
        return {e: e.value for e in self.events}


class Condition(Event):
    """Event that triggers when ``evaluate(events, count)`` becomes true.

    ``count`` is the number of constituent events that have triggered so
    far.  Nested conditions are flattened so the resulting
    :class:`ConditionValue` exposes leaf events only.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events of a condition must share one env")

        # Check for immediately-decidable conditions.
        if not self._events or self._evaluate(self._events, 0):
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        # Note: *processed*, not merely *triggered* — a Timeout carries its
        # value from construction, so "triggered" would leak future events.
        fired = [e for e in self._flatten(self._events) if e.processed]
        return ConditionValue(fired)

    @classmethod
    def _flatten(cls, events: List[Event]) -> List[Event]:
        result: List[Event] = []
        for event in events:
            if isinstance(event, Condition):
                result.extend(cls._flatten(event._events))
            else:
                result.append(event)
        return result

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # A failed constituent fails the whole condition.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Triggers once every constituent event has triggered."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Triggers as soon as one constituent event has triggered."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


# Hoisted binding: Event.__and__/__or__ and Environment.all_of/any_of
# dispatch through module globals in repro.des.core, installed here once
# at import time (repro.des always imports this module), replacing the
# old per-call `from .events import ...` on the hot path.
from . import core as _core

_core._AllOf = AllOf
_core._AnyOf = AnyOf
