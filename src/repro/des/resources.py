"""Shared resources with queueing: counted resources and level containers.

:class:`Resource` models a server (or pool of ``capacity`` identical
servers) with a FIFO request queue — the building block for CPUs, NICs,
disks and router ports in :mod:`repro.cluster`.  :class:`PriorityResource`
adds a priority to each request.  :class:`Container` models a continuous
level (e.g. buffer space) with put/get semantics.

Usage::

    cpu = Resource(env, capacity=1)
    with cpu.request() as req:
        yield req              # wait until granted
        yield env.timeout(work)
    # released on exiting the with-block
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappush
from typing import Deque, List, Optional

from .core import Environment, Event, PENDING, _POOL_MAX

try:
    from sys import getrefcount as _refcount
except ImportError:  # pragma: no cover - non-CPython: pooling disabled
    _refcount = None

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Container",
]


class Request(Event):
    """Request to use a :class:`Resource`; triggers once granted.

    Usable as a context manager: exiting the ``with`` block releases the
    resource (or cancels the request if it was never granted).
    """

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ — requests are the hottest allocation in
        # a simulation run (see docs/KERNEL.md).
        self.env = resource.env
        self.callbacks = []  # simlint: disable=REP104 (fresh-request contract)
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        #: Simulated time the request was granted (None while queued).
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel() if self.usage_since is None else self.release()

    def release(self) -> "Release":
        """Release the resource (only valid once granted)."""
        return Release(self.resource, self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._do_cancel(self)


class Release(Event):
    """Event that releases a granted :class:`Request` (fires immediately)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """``capacity`` identical servers with a FIFO queue of requests."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self._capacity = capacity
        self.queue: Deque[Request] = deque()
        self.users: List[Request] = []
        # Cumulative busy time accounting (for utilization metrics).
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        self._total_served = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name or id(self):}, {len(self.users)}/"
            f"{self._capacity} busy, {len(self.queue)} queued>"
        )

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of requests currently being served."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def total_served(self) -> int:
        """Number of requests granted so far."""
        return self._total_served

    # simlint: hotpath
    def request(self) -> Request:
        """Create (and enqueue) a new request for this resource.

        Draws from the environment's request free list when pooling is
        enabled; requests enter the pool via :meth:`free` (fast path
        only — the generator-path ``release()`` never recycles).
        """
        pool = self.env._req_pool
        if pool:
            req = pool.pop()
            # Pool-reset contract: recycled request, fresh callbacks.
            req.callbacks = []  # simlint: disable=REP104
            req._value = PENDING
            req._ok = True
            req._defused = False
            req.resource = self
            req.usage_since = None
            # Inlined _do_request (Resource.request is never inherited by
            # subclasses with a different queue discipline).
            if len(self.users) < self._capacity:
                self._grant(req)
            else:
                self.queue.append(req)
            return req
        return Request(self)

    # -- utilization accounting ------------------------------------------

    def busy_time(self, now: Optional[float] = None) -> float:
        """Total time at least one server was busy, up to ``now``."""
        if now is None:
            now = self.env.now
        busy = self._busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return busy

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time this resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time() / elapsed)

    def reset_accounting(self) -> None:
        """Zero the busy-time counters (e.g. after a warmup phase)."""
        self._busy_time = 0.0
        self._total_served = 0
        if self.users:
            self._busy_since = self.env.now
        else:
            self._busy_since = None

    # -- internals ---------------------------------------------------------

    # simlint: hotpath
    def _grant(self, req: Request) -> None:
        env = self.env
        now = env._now
        users = self.users
        if not users:
            self._busy_since = now
        users.append(req)
        req.usage_since = now
        self._total_served += 1
        # Inlined req.succeed() + env._schedule(req, NORMAL): a grant
        # happens exactly once per request and always fires at the
        # current time, so it goes straight to the NORMAL now queue
        # (kernel v3) unless the sanitizer wants the checked path.
        req._ok = True
        req._value = None
        san = env._san
        if san is None:
            env._eid += 1
            env._now_n.append(req)
            return
        san.on_schedule(req, now)
        eid = env._eid = env._eid + 1
        q = env._queue
        if q is not None:
            heappush(q, (now, 1, eid, req))  # NORMAL
        else:
            env._cal.push((now, 1, eid, req))

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(req)
        else:
            self.queue.append(req)

    def _do_cancel(self, req: Request) -> None:
        try:
            self.queue.remove(req)
        except ValueError:
            pass

    # simlint: hotpath
    def _do_release(self, req: Request) -> None:
        users = self.users
        try:
            users.remove(req)
        except ValueError:
            raise RuntimeError(
                f"release of a request that does not hold {self!r}"
            ) from None
        if not users and self._busy_since is not None:
            self._busy_time += self.env._now - self._busy_since
            self._busy_since = None
        # Hand the slot to the next queued request (skipping cancelled).
        queue = self.queue
        while queue:
            nxt = queue.popleft()
            if nxt._value is PENDING:
                self._grant(nxt)
                break
        # Free-list recycling (kernel v3).  A released request goes back
        # to the environment pool only when exactly one reference remains
        # outside this frame (refcount 3 = that reference + the ``req``
        # parameter + getrefcount's argument) — i.e. the fast-path caller
        # whose contract is "free, then overwrite the handle".  The
        # generator path's Release event holds an extra ``.request``
        # reference, so requests released through ``release()`` are never
        # recycled; sanitized environments skip recycling so every event
        # keeps its sanitizer identity.
        env = self.env
        if env._san is None:
            cls = req.__class__
            if cls is Request:
                pool = env._req_pool
            elif cls is PriorityRequest:
                pool = env._preq_pool
            else:
                return
            if (
                pool is not None
                and len(pool) < _POOL_MAX
                and _refcount(req) == 3
            ):
                req._value = PENDING  # poison stale reads
                pool.append(req)

    #: Release a granted request without allocating a Release event — the
    #: callback-chain fast path (see ``docs/KERNEL.md``).  Semantics are
    #: identical to ``request.release()``: the slot is handed to the next
    #: queued request synchronously, minus the bookkeeping event the
    #: generator API needs to have something to yield.  The handle may be
    #: recycled by the call: drop (or overwrite) it immediately after.
    free = _do_release


class PriorityRequest(Request):
    """Request with a priority; lower values are served first.

    Ties are broken FIFO via a monotonically increasing sequence number.
    """

    __slots__ = ("priority", "seq", "key")

    _seq = itertools.count()

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        seq = self.seq = next(PriorityRequest._seq)
        #: Sort key; stored (not computed) — the queue scan reads it a lot.
        self.key = (priority, seq)
        # Inlined Request/Event.__init__ (hot allocation; see docs/KERNEL.md).
        self.env = resource.env
        self.callbacks = []  # simlint: disable=REP104 (fresh-request contract)
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.usage_since = None
        resource._do_request(self)


class PriorityResource(Resource):
    """Resource whose queue is ordered by request priority."""

    # simlint: hotpath
    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        pool = self.env._preq_pool
        if pool:
            req = pool.pop()
            req.priority = priority
            seq = req.seq = next(PriorityRequest._seq)
            req.key = (priority, seq)
            # Pool-reset contract: recycled request, fresh callbacks.
            req.callbacks = []  # simlint: disable=REP104
            req._value = PENDING
            req._ok = True
            req._defused = False
            req.resource = self
            req.usage_since = None
            if len(self.users) < self._capacity:
                self._grant(req)
            else:
                self._enqueue(req)
            return req
        return PriorityRequest(self, priority)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(req)
        else:
            self._enqueue(req)

    # simlint: hotpath
    def _enqueue(self, req: Request) -> None:
        # Insert keeping the queue sorted by (priority, seq).  Seq is
        # monotonic, so a request at the tail's priority (or lower)
        # always appends — the common case is O(1) and the scan only
        # runs when a higher-priority request overtakes a queue.
        q = self.queue
        key = req.key  # type: ignore[attr-defined]
        if not q or q[-1].key <= key:  # type: ignore[attr-defined]
            q.append(req)
            return
        for i, other in enumerate(q):
            if other.key > key:  # type: ignore[attr-defined]
                q.insert(i, req)
                return
        q.append(req)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous level between 0 and ``capacity`` with blocking put/get."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; blocks while it would overflow the capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; blocks while the level is insufficient."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        # Serve puts then gets repeatedly until neither can progress;
        # strict FIFO within each queue (no overtaking).
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self._capacity:
                    self._put_queue.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
